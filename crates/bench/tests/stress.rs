//! Serve stress suite: concurrent pipelined clients racing a large
//! Monte-Carlo run against a deliberately tiny artifact cache and a small
//! work queue.
//!
//! What must hold under that pressure:
//!
//! * **no deadlock** — every socket read runs under a timeout, so a stuck
//!   daemon fails the test instead of hanging it;
//! * **id ↔ response pairing** — every response line carries one of the
//!   sender's ids, and every id terminates exactly once (`done`, or an
//!   `overloaded` rejection carrying a positive `retry_after_ms`);
//! * **byte identity** — the Monte-Carlo comparison computed while the
//!   cache was being thrashed is byte-identical to a one-shot
//!   `repro --json --out` run of the same seed.
//!
//! The whole scenario repeats `CC_STRESS_ITERS` times (default 2; the
//! acceptance drill runs it at 50) with a fresh daemon per iteration.

use cc_report::JsonValue;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Pipelined requests per client connection.
const DEPTH: usize = 16;
/// Concurrent pipelining clients (the Monte-Carlo run is a fifth).
const CLIENTS: usize = 4;
/// Monte-Carlo sample count raced against the pipelined clients.
const SAMPLES: usize = 1000;

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Starts `repro serve` with a four-entry cache and an eight-deep
    /// work queue: small enough that eviction churn is constant and the
    /// sixteen-deep pipelines can trip real `overloaded` rejections.
    fn start() -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--jobs",
                "4",
                "--cache-capacity",
                "4",
                "--queue-depth",
                "8",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn repro serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut banner = String::new();
        BufReader::new(stdout)
            .read_line(&mut banner)
            .expect("read listen banner");
        let addr = banner
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
            .to_string();
        Self { child, addr }
    }

    /// Connects with the anti-deadlock read timeout armed.
    fn connect(&self) -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(&self.addr).expect("connect to daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("arm read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        (reader, stream)
    }

    fn shutdown(mut self) {
        let (mut reader, mut stream) = self.connect();
        writeln!(stream, r#"{{"op":"shutdown"}}"#).expect("send shutdown");
        let mut bye = String::new();
        reader.read_line(&mut bye).expect("read bye");
        assert!(bye.contains(r#""type":"bye""#), "got: {bye}");
        let status = self.child.wait().expect("daemon exits");
        assert!(status.success(), "daemon must exit cleanly");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn read_json_line(reader: &mut BufReader<TcpStream>, context: &str) -> JsonValue {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .unwrap_or_else(|e| panic!("{context}: read timed out or failed (deadlock?): {e}"));
    assert!(!line.is_empty(), "{context}: daemon closed the connection");
    JsonValue::parse(line.trim_end())
        .unwrap_or_else(|e| panic!("{context}: unparsable line {line:?}: {e:?}"))
}

/// One pipelining client: writes `DEPTH` id-tagged requests without
/// reading, then drains, checking the pairing invariants. Returns how
/// many requests were rejected `overloaded`.
fn pipelined_client(daemon_addr: &str, client: usize) -> usize {
    let stream = TcpStream::connect(daemon_addr).expect("connect to daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("arm read timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut stream = stream;

    // Half the pipeline re-requests the scenario-independent fig05 (cache
    // hits and interner reuse), half walks fig10 across distinct
    // intensities (distinct fingerprints, guaranteed eviction churn in a
    // four-entry cache).
    for i in 0..DEPTH {
        let request = if i % 2 == 0 {
            format!(r#"{{"op":"run","id":{i},"experiments":["fig05"],"jobs":2}}"#)
        } else {
            let intensity = 100 + 10 * (client * DEPTH + i);
            format!(
                r#"{{"op":"run","id":{i},"experiments":["fig10"],"set":{{"grid.intensity":"{intensity}"}},"jobs":2}}"#
            )
        };
        writeln!(stream, "{request}").expect("send request");
    }

    let context = format!("client {client}");
    let mut terminated = vec![0usize; DEPTH];
    let mut overloaded = 0usize;
    while terminated.iter().sum::<usize>() < DEPTH {
        let value = read_json_line(&mut reader, &context);
        let id = value
            .get("id")
            .and_then(JsonValue::as_u64)
            .unwrap_or_else(|| panic!("{context}: response without our id: {}", value.render()))
            as usize;
        assert!(id < DEPTH, "{context}: echoed id {id} was never sent");
        match value.get("type").and_then(JsonValue::as_str) {
            Some("artifact") => {}
            Some("done") => terminated[id] += 1,
            Some("error") => {
                assert_eq!(
                    value.get("error").and_then(JsonValue::as_str),
                    Some("overloaded"),
                    "{context}: only backpressure may reject a valid request: {}",
                    value.render()
                );
                let retry = value
                    .get("retry_after_ms")
                    .and_then(JsonValue::as_u64)
                    .expect("overloaded carries retry_after_ms");
                assert!(retry >= 1, "{context}: advisory delay must be positive");
                overloaded += 1;
                terminated[id] += 1;
            }
            other => panic!("{context}: unexpected response kind {other:?}"),
        }
    }
    assert!(
        terminated.iter().all(|&t| t == 1),
        "{context}: every id must terminate exactly once: {terminated:?}"
    );
    overloaded
}

/// The racing Monte-Carlo run: one id-tagged 1000-sample request on its
/// own connection. Returns the comparison payload for the byte-identity
/// check.
fn mc_run(daemon_addr: &str) -> JsonValue {
    let stream = TcpStream::connect(daemon_addr).expect("connect to daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("arm read timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut stream = stream;
    writeln!(
        stream,
        r#"{{"op":"run","id":"mc","experiments":["ext-facility"],"dists":["fleet.growth ~ uniform(1.2,1.4)"],"samples":{SAMPLES},"seed":7,"jobs":4}}"#
    )
    .expect("send mc request");

    let comparison = read_json_line(&mut reader, "mc comparison");
    assert_eq!(
        comparison.get("type").and_then(JsonValue::as_str),
        Some("comparison"),
        "got: {}",
        comparison.render()
    );
    assert_eq!(comparison.get("id").and_then(JsonValue::as_str), Some("mc"));
    let done = read_json_line(&mut reader, "mc done");
    assert_eq!(done.get("type").and_then(JsonValue::as_str), Some("done"));
    assert_eq!(done.get("id").and_then(JsonValue::as_str), Some("mc"));
    assert_eq!(
        done.get("samples").and_then(JsonValue::as_u64),
        Some(SAMPLES as u64)
    );
    assert_eq!(done.get("seed").and_then(JsonValue::as_u64), Some(7));
    comparison
        .get("comparison")
        .expect("comparison payload")
        .clone()
}

/// The same Monte-Carlo run through the one-shot CLI, as the byte-identity
/// reference.
fn one_shot_mc_reference(dir: &std::path::Path) -> JsonValue {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--experiment",
            "ext-facility",
            "--set",
            "fleet.growth ~ uniform(1.2,1.4)",
            "--samples",
            &SAMPLES.to_string(),
            "--seed",
            "7",
            "--jobs",
            "2",
            "--json",
            "--out",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("run one-shot repro");
    assert!(
        out.status.success(),
        "one-shot failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(dir.join("mc-comparison.json")).expect("read reference");
    JsonValue::parse(text.trim()).expect("reference artifact parses")
}

fn stress_iterations() -> usize {
    std::env::var("CC_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

#[test]
fn pipelined_clients_race_a_monte_carlo_run_under_a_tiny_cache() {
    let dir = std::env::temp_dir().join(format!("cc-stress-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let reference = one_shot_mc_reference(&dir);

    for iteration in 0..stress_iterations() {
        let daemon = Daemon::start();
        let addr = daemon.addr.clone();

        let addr = addr.as_str();
        let (mc, overloads) = std::thread::scope(|scope| {
            let mc = scope.spawn(move || mc_run(addr));
            let clients: Vec<_> = (0..CLIENTS)
                .map(|c| scope.spawn(move || pipelined_client(addr, c)))
                .collect();
            let overloads: usize = clients.into_iter().map(|c| c.join().expect("client")).sum();
            (mc.join().expect("mc run"), overloads)
        });

        // Rejected requests are allowed (that is what backpressure is
        // for), but the daemon must not have rejected *everything* — the
        // queue drains while clients write, so most of each pipeline
        // lands.
        assert!(
            overloads < CLIENTS * DEPTH,
            "iteration {iteration}: every request was rejected"
        );

        // The digests computed during the stampede match the quiet
        // one-shot reference byte for byte.
        assert_eq!(
            mc.render(),
            reference.render(),
            "iteration {iteration}: raced Monte-Carlo digests drifted from the one-shot CLI"
        );

        daemon.shutdown();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn served_artifacts_stay_byte_identical_under_eviction_pressure() {
    // A four-entry cache cannot hold a nine-point sweep: artifacts are
    // evicted and recomputed mid-request. The streamed bytes must not
    // care.
    let daemon = Daemon::start();
    let dir = std::env::temp_dir().join(format!("cc-stress-evict-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let served_dir = dir.join("served");
    let cli_dir = dir.join("cli");

    let sweep = "grid.intensity=100..500/50";
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "client",
            "--addr",
            &daemon.addr,
            "--experiment",
            "fig10",
            "--sweep",
            sweep,
            "--jobs",
            "4",
            "--out",
            served_dir.to_str().unwrap(),
        ])
        .output()
        .expect("run repro client");
    assert!(
        out.status.success(),
        "client failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let cli = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--experiment",
            "fig10",
            "--sweep",
            sweep,
            "--jobs",
            "2",
            "--json",
            "--out",
            cli_dir.to_str().unwrap(),
        ])
        .output()
        .expect("run one-shot repro");
    assert!(cli.status.success());

    let mut names: Vec<String> = std::fs::read_dir(&served_dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert_eq!(
        names.len(),
        10,
        "nine points plus the comparison: {names:?}"
    );
    for name in &names {
        let served = std::fs::read(served_dir.join(name)).unwrap();
        let one_shot = std::fs::read(cli_dir.join(name)).unwrap();
        assert_eq!(served, one_shot, "`{name}` must be byte-identical");
    }

    std::fs::remove_dir_all(&dir).ok();
    daemon.shutdown();
}
