//! Integration smoke tests for the `repro` binary: list/JSON modes, scenario
//! files, per-key overrides, tag filtering, artifact output and the parallel
//! runner.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn stdout_of(output: std::process::Output) -> String {
    assert!(
        output.status.success(),
        "repro failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf-8 stdout")
}

struct Streams {
    stdout: String,
    stderr: String,
}

fn streams_of(output: std::process::Output) -> Streams {
    assert!(
        output.status.success(),
        "repro failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    Streams {
        stdout: String::from_utf8(output.stdout).expect("utf-8 stdout"),
        stderr: String::from_utf8(output.stderr).expect("utf-8 stderr"),
    }
}

#[test]
fn list_prints_all_27_keys() {
    let out = stdout_of(repro().arg("--list").output().unwrap());
    let keys: Vec<&str> = out.lines().collect();
    assert_eq!(keys.len(), 27);
    assert!(keys.contains(&"fig10"));
    assert!(keys.contains(&"table4"));
    assert!(keys.contains(&"ext-mc"));
    assert!(keys.contains(&"ext-facility"));
}

#[test]
fn list_respects_tag_filters() {
    let out = stdout_of(
        repro()
            .args(["--list", "--tag", "extension"])
            .output()
            .unwrap(),
    );
    assert_eq!(out.lines().count(), 8);
    assert!(out.lines().all(|k| k.starts_with("ext-")));

    let out = stdout_of(
        repro()
            .args(["--list", "--tag", "figure", "--tag", "mobile"])
            .output()
            .unwrap(),
    );
    assert!(out.lines().count() >= 2);
    assert!(out.contains("fig10"));
}

#[test]
fn json_artifact_carries_scenario_tables_series_notes() {
    let out = stdout_of(repro().args(["--json", "fig10"]).output().unwrap());
    assert!(out.contains(r#""key":"fig10""#));
    assert!(out.contains(r#""title":"Figure 10""#));
    assert!(out.contains(r#""tags":["figure","mobile"]"#));
    assert!(out.contains(r#""name":"paper""#));
    assert!(out.contains(r#""intensity_g_per_kwh":380.0"#));
    assert!(out.contains(r#""name":"breakeven-days""#));
    assert!(out.contains(r#""notes":["#));
}

#[test]
fn list_json_is_a_metadata_index() {
    let out = stdout_of(repro().args(["--list", "--json"]).output().unwrap());
    assert!(out.starts_with('['));
    assert!(out.contains(r#""key":"fig01""#));
    assert!(out.contains(r#""description":"#));
}

#[test]
fn scenario_file_and_overrides_change_fig10() {
    let dir = std::env::temp_dir().join(format!("cc-repro-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let scenario_path = dir.join("green.toml");
    std::fs::write(
        &scenario_path,
        "name = \"green\"\n[grid]\nintensity_g_per_kwh = 24\n[device]\nlifetime_years = 5\n",
    )
    .unwrap();

    let paper = stdout_of(repro().args(["--json", "fig10"]).output().unwrap());
    let green = stdout_of(
        repro()
            .args([
                "--scenario",
                scenario_path.to_str().unwrap(),
                "--json",
                "fig10",
            ])
            .output()
            .unwrap(),
    );
    assert_ne!(paper, green, "a custom scenario must change the artifact");
    assert!(green.contains(r#""intensity_g_per_kwh":24.0"#));

    let overridden = stdout_of(
        repro()
            .args([
                "--set",
                "grid.intensity=24",
                "--set",
                "device.lifetime=5",
                "--json",
                "fig10",
            ])
            .output()
            .unwrap(),
    );
    // --set composes to the same scenario as the file, apart from the name
    // (which appears only in the artifact's scenario metadata — experiment
    // output never embeds it, so the sweep cache can share output across
    // points that differ only in labeling).
    assert_eq!(
        overridden.replace(r#""name":"paper""#, r#""name":"green""#),
        green
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn parallel_run_writes_one_artifact_per_experiment() {
    let dir = std::env::temp_dir().join(format!("cc-repro-out-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let out = stdout_of(
        repro()
            .args(["--jobs", "8", "--json", "--out", dir.to_str().unwrap()])
            .output()
            .unwrap(),
    );
    assert_eq!(out.lines().count(), 27, "one `wrote …` line per experiment");
    let mut files: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    files.sort();
    assert_eq!(files.len(), 27);
    assert!(files.contains(&"fig10.json".to_string()));
    assert!(files.contains(&"ext-mc.json".to_string()));
    assert!(files.contains(&"ext-facility.json".to_string()));
    // Parallel output must byte-match a sequential run of the same artifact.
    let sequential = stdout_of(repro().args(["--json", "fig14"]).output().unwrap());
    let parallel_artifact = std::fs::read_to_string(dir.join("fig14.json")).unwrap();
    assert_eq!(sequential.trim_end(), parallel_artifact);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn energy_source_names_resolve_to_intensities() {
    let out = stdout_of(
        repro()
            .args(["--set", "grid.source=wind", "--json", "fig10"])
            .output()
            .unwrap(),
    );
    assert!(out.contains(r#""source":"wind""#));
    assert!(out.contains(r#""intensity_g_per_kwh":11.0"#));
}

#[test]
fn sweep_writes_labeled_artifacts_plus_comparison() {
    let dir = std::env::temp_dir().join(format!("cc-repro-sweep-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let out = streams_of(
        repro()
            .args([
                "--experiment",
                "fig10",
                "--sweep",
                "grid.intensity=50,380,700",
                "--jobs",
                "2",
                "--json",
                "--out",
                dir.to_str().unwrap(),
            ])
            .output()
            .unwrap(),
    );
    // One `wrote …` line per grid point then the comparison report, in grid
    // order (the reorder buffer keeps stdout deterministic). The cache
    // footer (fig10 depends on the swept grid axis, so every point runs)
    // goes to stderr in every JSON mode, `--out` or not.
    let lines: Vec<&str> = out.stdout.lines().collect();
    assert_eq!(lines.len(), 4, "{}", out.stdout);
    assert!(lines[0].ends_with("fig10@grid.intensity-50.json"));
    assert!(lines[1].ends_with("fig10@grid.intensity-380.json"));
    assert!(lines[2].ends_with("fig10@grid.intensity-700.json"));
    assert!(lines[3].ends_with("comparison.json"));
    assert!(out.stderr.contains("cache: fig10: 3 runs, 0 reuses"));
    assert!(out.stderr.contains("cache: total: 3 runs, 0 reuses"));

    // Each artifact is labeled with its point and carries the point's
    // scenario.
    let p50 = std::fs::read_to_string(dir.join("fig10@grid.intensity-50.json")).unwrap();
    assert!(p50.contains(r#""label":"grid.intensity=50""#));
    assert!(p50.contains(r#""assignments":{"grid.intensity":"50"}"#));
    assert!(p50.contains(r#""intensity_g_per_kwh":50.0"#));
    assert!(p50.contains(r#""name":"paper[grid.intensity=50]""#));

    // The comparison diffs fig10's summary scalar across the three points.
    let comparison = std::fs::read_to_string(dir.join("comparison.json")).unwrap();
    assert!(comparison.contains(r#""experiment":"fig10""#));
    assert!(comparison.contains(r#""metric":"mobilenet-v3-cpu-breakeven""#));
    assert!(comparison.contains(r#""label":"grid.intensity=50""#));
    assert!(comparison.contains(r#""label":"grid.intensity=380""#));
    assert!(comparison.contains(r#""label":"grid.intensity=700""#));
    assert!(comparison.contains(r#""points":3"#));
    assert!(comparison.contains(r#""spread_ratio":"#));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_to_stdout_is_deterministic_across_job_counts() {
    let run = |jobs: &str| {
        stdout_of(
            repro()
                .args([
                    "--sweep",
                    "device.lifetime=2..4/1",
                    "--jobs",
                    jobs,
                    "--json",
                    "fig10",
                    "ext-die",
                ])
                .output()
                .unwrap(),
        )
    };
    let sequential = run("1");
    let parallel = run("8");
    assert_eq!(sequential, parallel, "reorder buffer must fix the order");
    // 2 experiments x 3 points, each artifact one JSON line, plus the
    // comparison report line.
    assert_eq!(sequential.lines().count(), 7);
}

#[test]
fn node_sweep_moves_ext_die_per_die_carbon() {
    let out = stdout_of(
        repro()
            .args(["--sweep", "fab.node_nm=28,7,3", "--json", "ext-die"])
            .output()
            .unwrap(),
    );
    let comparison = out.lines().last().unwrap();
    assert!(comparison.contains(r#""metric":"featured-node-per-die-carbon""#));
    // spread_ratio > 1 proves fab.node_nm is load-bearing for per-die carbon.
    let spread: f64 = comparison
        .split(r#""spread_ratio":"#)
        .nth(1)
        .unwrap()
        .split('}')
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!(
        spread > 1.5,
        "sweeping the node must move per-die carbon, got {spread}x"
    );
}

#[test]
fn sweeping_the_energy_sources_by_name() {
    let out = stdout_of(
        repro()
            .args(["--sweep", "grid.source=wind,coal", "--json", "fig10"])
            .output()
            .unwrap(),
    );
    assert!(out.contains(r#""intensity_g_per_kwh":11.0"#));
    assert!(out.contains(r#""intensity_g_per_kwh":820.0"#));
}

#[test]
fn invalid_sweeps_exit_nonzero_with_diagnostics() {
    let bad_path = repro()
        .args(["--sweep", "grid.nope=1,2", "fig10"])
        .output()
        .unwrap();
    assert_eq!(bad_path.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad_path.stderr).contains("unknown scenario key"));

    let bad_range = repro()
        .args(["--sweep", "grid.intensity=800..10/100", "fig10"])
        .output()
        .unwrap();
    assert_eq!(bad_range.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad_range.stderr).contains("below start"));

    let bad_value = repro()
        .args(["--sweep", "grid.intensity=0..100/50", "fig10"])
        .output()
        .unwrap();
    assert_eq!(bad_value.status.code(), Some(2), "0 g/kWh is unphysical");
}

#[test]
fn facility_growth_sweep_is_deterministic_and_prints_a_crossover() {
    // The capacity-planning workload end to end: sweep the fleet growth
    // factor over the facility model, in parallel, and check the comparison
    // locates where construction carbon overtakes operations.
    let run = |jobs: &str| {
        stdout_of(
            repro()
                .args([
                    "--sweep",
                    "fleet.growth=1.0,1.1,1.2",
                    "--jobs",
                    jobs,
                    "--json",
                    "ext-facility",
                ])
                .output()
                .unwrap(),
        )
    };
    let sequential = run("1");
    for jobs in ["2", "8"] {
        assert_eq!(
            sequential,
            run(jobs),
            "--jobs {jobs} must not change output"
        );
    }
    // 3 per-point artifacts + the comparison report.
    assert_eq!(sequential.lines().count(), 4);
    let comparison = sequential.lines().last().unwrap();
    assert!(comparison.contains(r#""metric":"opex-capex-breakeven-year""#));
    assert!(comparison.contains(r#""axis":"fleet.growth""#));
    assert!(comparison
        .contains(r#""threshold":{"value":2017.0,"label":"construction overtakes operations"}"#));
    // Per-point artifacts carry the per-year operational/capex series.
    assert!(sequential.contains(r#""name":"facility-operational-carbon""#));
    assert!(sequential.contains(r#""name":"facility-capex-carbon""#));
}

#[test]
fn facility_sweep_comparison_locates_the_growth_crossover() {
    let out = stdout_of(
        repro()
            .args([
                "--sweep",
                "fleet.growth=1.0..1.5/0.1",
                "--json",
                "ext-facility",
            ])
            .output()
            .unwrap(),
    );
    let comparison = out.lines().last().unwrap();
    assert!(
        comparison.contains(r#""crossings":[{"at":"#),
        "comparison must locate a crossover: {comparison}"
    );
    assert!(comparison.contains("construction overtakes operations) at fleet.growth"));
}

#[test]
fn full_suite_sweep_has_no_scalar_gaps() {
    // Every experiment must contribute a summary scalar to a full-suite
    // sweep: no `(no summary scalar)` metric and no null row values.
    let out = stdout_of(
        repro()
            .args(["--sweep", "grid.intensity=380,50", "--json"])
            .output()
            .unwrap(),
    );
    let comparison = out.lines().last().unwrap();
    assert!(comparison.contains(r#""comparisons":["#));
    assert!(!comparison.contains("(no summary scalar)"));
    assert!(!comparison.contains(r#""value":null"#));
    // All 27 experiments appear; ext-facility contributes a second
    // comparison for its thresholded cumulative break-even scalar.
    assert_eq!(comparison.matches(r#""experiment":"#).count(), 28);
}

#[test]
fn mixed_fleet_sweep_prints_the_cumulative_payback_crossover() {
    // The mixed-fleet acceptance criterion end to end: sweeping the
    // AI-training weight moves the cumulative-carbon break-even across the
    // one-year-payback threshold, and the comparison report locates the
    // composition where that happens.
    let out = stdout_of(
        repro()
            .args([
                "--sweep",
                "fleet.mix[ai-training]=0..0.4/0.1",
                "--json",
                "ext-facility",
            ])
            .output()
            .unwrap(),
    );
    let comparison = out.lines().last().unwrap();
    // Both break-even metrics are compared: the annual summary scalar and
    // the thresholded cumulative one.
    assert!(comparison.contains(r#""metric":"opex-capex-breakeven-year""#));
    assert!(comparison.contains(r#""metric":"cumulative-carbon-breakeven-year""#));
    assert!(comparison.contains(r#""axis":"fleet.mix[ai-training]""#));
    assert!(
        comparison.contains("cumulative-carbon-breakeven-year crosses 2014 year"),
        "missing cumulative crossover: {comparison}"
    );
    assert!(comparison.contains("embodied pays back"));
    assert!(comparison.contains("at fleet.mix[ai-training] ≈ 0.3"));
    // Mixed points carry the per-SKU breakdown series; the pure w=0 point
    // still carries the composition (web at weight 1, AI at 0).
    assert!(out.contains(r#""name":"facility-operational-carbon-ai-training""#));
    assert!(out.contains(r#""mix":{"web":1.0,"ai-training":0.0}"#));
}

#[test]
fn fleet_sku_and_mix_overrides_flow_into_the_facility() {
    let storage = stdout_of(
        repro()
            .args(["--set", "fleet.sku=storage", "--json", "ext-facility"])
            .output()
            .unwrap(),
    );
    assert!(storage.contains(r#""sku":"storage""#));
    let paper = stdout_of(repro().args(["--json", "ext-facility"]).output().unwrap());
    assert_ne!(storage, paper, "a storage fleet must change the artifact");

    // Unknown SKU names and degenerate mixes are rejected up front.
    let unknown = repro()
        .args(["--set", "fleet.sku=mainframe", "ext-facility"])
        .output()
        .unwrap();
    assert_eq!(unknown.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&unknown.stderr).contains("unknown server SKU"));

    let bad_sum = repro()
        .args(["--set", "fleet.mix=web:0.5,ai-training:0.4", "ext-facility"])
        .output()
        .unwrap();
    assert_eq!(bad_sum.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad_sum.stderr).contains("sum to 1"));
}

#[test]
fn fleet_overrides_flow_into_the_facility_experiments() {
    let out = stdout_of(
        repro()
            .args([
                "--set",
                "fleet.initial_servers=1000",
                "--set",
                "fleet.growth=1.05",
                "--set",
                "fleet.pue=2.0",
                "--set",
                "fleet.renewable_ramp=0,0.5,1",
                "--set",
                "fleet.horizon_years=3",
                "--json",
                "ext-facility",
            ])
            .output()
            .unwrap(),
    );
    assert!(out.contains(r#""initial_servers":1000"#));
    assert!(out.contains(r#""renewable_ramp":[0.0,0.5,1.0]"#));
    assert!(out.contains(r#""horizon_years":3"#));
    // Three simulated years in the facility table.
    assert!(out.contains(r#"["2015","#));
    assert!(!out.contains(r#"["2016","#));

    let invalid = repro()
        .args(["--set", "fleet.pue=0.8", "ext-facility"])
        .output()
        .unwrap();
    assert_eq!(invalid.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&invalid.stderr).contains("pue"));
}

#[test]
fn growth_sweep_runs_scenario_independent_experiments_once() {
    // The dependency-cache acceptance criterion: a full-suite fleet.growth
    // sweep must execute scenario-independent experiments exactly once
    // (verified via the cache-hit footer) while fleet-dependent ones run at
    // every point — and the comparison artifact must be byte-identical to a
    // `--no-cache` run, because dedup only merges jobs whose declared
    // dependency fields agree.
    let dir = std::env::temp_dir().join(format!("cc-repro-cache-{}", std::process::id()));
    let cached_dir = dir.join("cached");
    let uncached_dir = dir.join("uncached");
    std::fs::remove_dir_all(&dir).ok();
    let sweep = |out_dir: &std::path::Path, extra: &[&str]| {
        let mut args = vec![
            "--sweep",
            "fleet.growth=1.0..2.0/0.25",
            // Keep the Monte-Carlo experiment fast; both runs use the same
            // scenario, so the comparison stays comparable byte for byte.
            "--set",
            "mc.samples=500",
            "--jobs",
            "4",
            "--json",
            "--out",
            out_dir.to_str().unwrap(),
        ];
        args.extend_from_slice(extra);
        streams_of(repro().args(&args).output().unwrap())
    };

    let cached = sweep(&cached_dir, &[]);
    // Scenario-independent experiments: one run, four reuses across the
    // five growth points. Fleet-dependent ones re-run everywhere. The
    // footer rides on stderr (JSON mode keeps stdout machine-parseable).
    let footer = &cached.stderr;
    assert!(footer.contains("cache: fig05: 1 run, 4 reuses"), "{footer}");
    assert!(footer.contains("cache: fig09: 1 run, 4 reuses"));
    assert!(footer.contains("cache: ext-facility: 5 runs, 0 reuses"));
    assert!(footer.contains("cache: fig02: 5 runs, 0 reuses"));
    // Partially dependent experiments ignore the growth axis entirely.
    assert!(footer.contains("cache: fig10: 1 run, 4 reuses"));
    assert!(footer.contains("cache: ext-sched: 1 run, 4 reuses"));
    assert!(footer.contains("cache: total: 43 runs, 92 reuses"));
    assert!(
        !cached.stdout.contains("cache:"),
        "the footer must stay off JSON-mode stdout"
    );

    let uncached = sweep(&uncached_dir, &["--no-cache"]);
    assert!(
        !uncached.stdout.contains("cache:") && !uncached.stderr.contains("cache:"),
        "--no-cache must not print a cache footer"
    );

    // Byte-identical comparison artifact, and byte-identical per-point
    // artifacts for a cached experiment (reuse is invisible in content).
    let read = |d: &std::path::Path, name: &str| std::fs::read(d.join(name)).unwrap();
    assert_eq!(
        read(&cached_dir, "comparison.json"),
        read(&uncached_dir, "comparison.json")
    );
    for name in [
        "fig05@fleet.growth-1.75.json",
        "ext-facility@fleet.growth-1.75.json",
    ] {
        assert_eq!(read(&cached_dir, name), read(&uncached_dir, name), "{name}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn warm_cache_dir_rerun_recomputes_nothing_and_matches_no_cache() {
    // The persistent-cache acceptance criterion: a second identical run
    // against a warm `--cache-dir` performs zero experiment recomputes
    // (verified via the disk footer) and writes artifacts byte-identical
    // to a `--no-cache` run of the same sweep.
    let dir = std::env::temp_dir().join(format!("cc-repro-disk-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cache_dir = dir.join("cache");
    let sweep = |out_dir: &std::path::Path, extra: &[&str]| {
        let mut args = vec![
            "--sweep",
            "fleet.growth=1.0,1.5",
            "--set",
            "mc.samples=500",
            "--jobs",
            "4",
            "--json",
            "--out",
            out_dir.to_str().unwrap(),
        ];
        args.extend_from_slice(extra);
        streams_of(repro().args(&args).output().unwrap())
    };

    // Cold: every dedup group is computed fresh and stored. 23 entries are
    // independent of fleet.growth (1 group each) and 4 depend on it
    // (2 groups each over the two points): 23 + 8 = 31 recomputes.
    let cold_dir = dir.join("cold");
    let cache = ["--cache-dir", cache_dir.to_str().unwrap()];
    let cold = sweep(&cold_dir, &cache);
    assert!(
        cold.stderr
            .contains("disk: fig05: 1 recompute, 0 disk hits"),
        "{}",
        cold.stderr
    );
    assert!(cold
        .stderr
        .contains("disk: ext-facility: 2 recomputes, 0 disk hits"));
    assert!(cold
        .stderr
        .contains("disk: total: 31 recomputes, 0 disk hits"));
    assert!(
        !cold.stdout.contains("disk:"),
        "the disk footer must stay off JSON-mode stdout"
    );

    // Warm: a fresh process finds every group on disk — zero recomputes.
    let warm_dir = dir.join("warm");
    let warm = sweep(&warm_dir, &cache);
    assert!(
        warm.stderr
            .contains("disk: fig05: 0 recomputes, 1 disk hit"),
        "{}",
        warm.stderr
    );
    assert!(warm
        .stderr
        .contains("disk: ext-facility: 0 recomputes, 2 disk hits"));
    assert!(warm
        .stderr
        .contains("disk: total: 0 recomputes, 31 disk hits"));

    // Without --cache-dir there is no disk footer (in-memory footer stays).
    let plain_dir = dir.join("plain");
    let plain = sweep(&plain_dir, &[]);
    assert!(plain.stderr.contains("cache: total:"));
    assert!(!plain.stderr.contains("disk:"), "{}", plain.stderr);

    // Replayed artifacts must be byte-identical to an uncached run.
    let uncached_dir = dir.join("uncached");
    sweep(&uncached_dir, &["--no-cache"]);
    let mut names: Vec<String> = std::fs::read_dir(&uncached_dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert_eq!(names.len(), 55, "27 experiments x 2 points + comparison");
    for name in &names {
        assert_eq!(
            std::fs::read(warm_dir.join(name)).unwrap(),
            std::fs::read(uncached_dir.join(name)).unwrap(),
            "disk-cache replay must be invisible in {name}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_processes_share_one_cache_dir_safely() {
    // Two processes racing on one `--cache-dir` must both succeed and both
    // produce artifacts byte-identical to a `--no-cache` run: atomic
    // temp-file + rename publication means a reader never observes a
    // partial entry, whichever process wins each write.
    let dir = std::env::temp_dir().join(format!("cc-repro-race-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cache_dir = dir.join("cache");
    std::fs::create_dir_all(&cache_dir).unwrap();
    let out_a = dir.join("a");
    let out_b = dir.join("b");
    let uncached_dir = dir.join("uncached");
    let spawn = |out_dir: &std::path::Path, extra: &[&str]| {
        let mut args = vec![
            "--sweep",
            "grid.intensity=50,380,700",
            "--set",
            "mc.samples=500",
            "--jobs",
            "2",
            "--json",
            "--out",
            out_dir.to_str().unwrap(),
        ];
        args.extend_from_slice(extra);
        repro()
            .args(&args)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .unwrap()
    };
    let cache = ["--cache-dir", cache_dir.to_str().unwrap()];
    let mut first = spawn(&out_a, &cache);
    let mut second = spawn(&out_b, &cache);
    assert!(first.wait().unwrap().success());
    assert!(second.wait().unwrap().success());
    assert!(spawn(&uncached_dir, &["--no-cache"])
        .wait()
        .unwrap()
        .success());

    let mut names: Vec<String> = std::fs::read_dir(&uncached_dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert_eq!(names.len(), 82, "27 experiments x 3 points + comparison");
    for name in &names {
        let reference = std::fs::read(uncached_dir.join(name)).unwrap();
        assert_eq!(
            std::fs::read(out_a.join(name)).unwrap(),
            reference,
            "process A diverged in {name}"
        );
        assert_eq!(
            std::fs::read(out_b.join(name)).unwrap(),
            reference,
            "process B diverged in {name}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn json_sweep_to_stdout_keeps_the_footer_on_stderr() {
    // When stdout is a pure-JSON stream the footer must not corrupt it.
    let out = repro()
        .args(["--sweep", "fleet.growth=1.0,1.5", "--json", "ext-facility"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(!stdout.contains("cache:"), "{stdout}");
    assert!(stdout
        .lines()
        .all(|l| l.starts_with('{') || l.starts_with('[')));
    assert!(stderr.contains("cache: ext-facility: 2 runs, 0 reuses"));
}

#[test]
fn every_json_mode_keeps_stdout_machine_parseable() {
    // The full audit of `--json` × `--out` combinations: whatever lands on
    // stdout must parse as JSON, line by line (`--out` modes print
    // `wrote …` paths, which are exempt — they are not a JSON stream).
    let dir = std::env::temp_dir().join(format!("cc-repro-parse-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let sweep = ["--sweep", "fleet.growth=1.0,1.5", "--json", "ext-facility"];

    // Pure-JSON stdout: every line must round-trip through the parser.
    let plain = streams_of(repro().args(sweep).output().unwrap());
    for line in plain.stdout.lines() {
        cc_report::JsonValue::parse(line)
            .unwrap_or_else(|e| panic!("unparseable stdout line ({e}): {line}"));
    }

    // With --out, the footer must not leak onto stdout either, and every
    // artifact file written must itself parse.
    let out_dir = dir.join("artifacts");
    let with_out = streams_of(
        repro()
            .args(sweep)
            .args(["--out", out_dir.to_str().unwrap()])
            .output()
            .unwrap(),
    );
    assert!(!with_out.stdout.contains("cache:"), "{}", with_out.stdout);
    assert!(with_out.stderr.contains("cache: total:"));
    for entry in std::fs::read_dir(&out_dir).unwrap() {
        let path = entry.unwrap().path();
        let text = std::fs::read_to_string(&path).unwrap();
        cc_report::JsonValue::parse(&text)
            .unwrap_or_else(|e| panic!("unparseable artifact {} ({e})", path.display()));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn explain_prints_the_dependency_plan_without_running() {
    let out = stdout_of(
        repro()
            .args(["--explain", "--sweep", "fleet.growth=1.0..2.0/0.25"])
            .output()
            .unwrap(),
    );
    assert!(out.starts_with("dependency plan — 27 experiments x 5 points = 135 jobs"));
    assert!(out.contains("fig05"));
    assert!(out.contains("(scenario-independent)"));
    assert!(out.contains("deps: fleet.*, grid.intensity"));
    assert!(out.contains("total: 43 runs, 92 reuses"));

    // Without a sweep it documents the dependency sets over a single point.
    let single = stdout_of(repro().args(["--explain", "ext-die"]).output().unwrap());
    assert!(single.contains("deps: fab.node_nm, fab.yield_factor"));
    assert!(single.contains("1 experiment x 1 point = 1 job"));

    // --no-cache is reflected in the plan.
    let no_cache = stdout_of(
        repro()
            .args([
                "--explain",
                "--no-cache",
                "--sweep",
                "fleet.growth=1.0,1.5",
                "fig05",
            ])
            .output()
            .unwrap(),
    );
    assert!(no_cache.contains("2 runs, 0 reuses"), "{no_cache}");
}

#[test]
fn experiment_flag_selects_like_a_positional_key() {
    let positional = stdout_of(repro().args(["--json", "fig14"]).output().unwrap());
    let flagged = stdout_of(
        repro()
            .args(["--experiment", "fig14", "--json"])
            .output()
            .unwrap(),
    );
    assert_eq!(positional, flagged);
}

#[test]
fn bench_ci_writes_a_machine_readable_report() {
    let dir = std::env::temp_dir().join(format!("cc-bench-ci-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_ci.json");
    let out = Command::new(env!("CARGO_BIN_EXE_bench-ci"))
        .arg(&path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "bench-ci failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&path).unwrap();
    assert!(json.starts_with('['), "{json}");
    for field in [
        "\"name\":",
        "\"mean_ns\":",
        "\"min_ns\":",
        "\"iterations\":",
    ] {
        assert!(json.contains(field), "missing {field} in {json}");
    }
    // The facility and sweep hot paths are both covered.
    assert!(json.contains("ci/facility/paper-run"));
    assert!(json.contains("ci/facility/mixed-fleet-run"));
    assert!(json.contains("ci/sweep/fingerprint-dedup-full-suite"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_inputs_exit_nonzero_with_diagnostics() {
    let unknown_key = repro().arg("fig99").output().unwrap();
    assert_eq!(unknown_key.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&unknown_key.stderr).contains("unknown experiment"));

    let unknown_tag = repro().args(["--tag", "nope"]).output().unwrap();
    assert_eq!(unknown_tag.status.code(), Some(2));

    let bad_set = repro()
        .args(["--set", "grid.intensity=dirty", "fig10"])
        .output()
        .unwrap();
    assert_eq!(bad_set.status.code(), Some(2));

    let invalid = repro()
        .args(["--set", "grid.renewable_fraction=2", "fig10"])
        .output()
        .unwrap();
    assert_eq!(invalid.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&invalid.stderr).contains("renewable_fraction"));
}

#[test]
fn mc_runs_are_byte_identical_per_seed_across_job_counts() {
    let dir = std::env::temp_dir().join(format!("cc-repro-mc-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let run = |jobs: &str, seed: &str, sub: &str| {
        let out_dir = dir.join(sub);
        let streams = streams_of(
            repro()
                .args([
                    "--experiment",
                    "ext-facility",
                    "--set",
                    "fleet.growth ~ uniform(1.2,1.4)",
                    "--samples",
                    "400",
                    "--seed",
                    seed,
                    "--jobs",
                    jobs,
                    "--json",
                    "--out",
                ])
                .arg(&out_dir)
                .output()
                .unwrap(),
        );
        assert!(streams.stderr.contains("cache:"), "footer on stderr");
        std::fs::read(out_dir.join("mc-comparison.json")).unwrap()
    };

    // Same seed, different worker counts: the reorder buffer feeds the
    // streaming accumulators in sample order, so the artifact is
    // byte-identical regardless of scheduling.
    let sequential = run("1", "7", "jobs1");
    let parallel = run("4", "7", "jobs4");
    assert_eq!(sequential, parallel, "same seed must be byte-reproducible");

    // A different seed draws a different sample set — the bytes differ,
    // but the 90% bands of the same underlying distribution overlap.
    let reseeded = run("4", "8", "seed8");
    assert_ne!(sequential, reseeded, "different seeds must differ");
    let band = |bytes: &[u8]| {
        let parsed = cc_report::JsonValue::parse(std::str::from_utf8(bytes).unwrap()).unwrap();
        let comparisons = parsed.get("comparisons").unwrap().as_array().unwrap();
        comparisons
            .iter()
            .map(|c| {
                let stats = c.get("stats").unwrap();
                (
                    stats
                        .get("p05")
                        .and_then(cc_report::JsonValue::as_f64)
                        .unwrap(),
                    stats
                        .get("p95")
                        .and_then(cc_report::JsonValue::as_f64)
                        .unwrap(),
                )
            })
            .collect::<Vec<_>>()
    };
    let (a, b) = (band(&sequential), band(&reseeded));
    assert_eq!(a.len(), b.len());
    assert!(!a.is_empty());
    for ((a05, a95), (b05, b95)) in a.iter().zip(&b) {
        assert!(
            a05 <= b95 && b05 <= a95,
            "seed-7 band [{a05}, {a95}] and seed-8 band [{b05}, {b95}] must overlap"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn invalid_mc_flags_exit_nonzero_with_diagnostics() {
    let orphan_samples = repro()
        .args(["--samples", "100", "ext-facility"])
        .output()
        .unwrap();
    assert_eq!(orphan_samples.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&orphan_samples.stderr).contains("--samples"));

    let missing_samples = repro()
        .args(["--set", "fleet.growth ~ uniform(1.2,1.4)", "ext-facility"])
        .output()
        .unwrap();
    assert_eq!(missing_samples.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&missing_samples.stderr).contains("--samples"));

    let mixed = repro()
        .args([
            "--set",
            "fleet.growth ~ uniform(1.2,1.4)",
            "--sweep",
            "grid.intensity=50,380",
            "--samples",
            "10",
            "ext-facility",
        ])
        .output()
        .unwrap();
    assert_eq!(mixed.status.code(), Some(2));

    let bad_dist = repro()
        .args([
            "--set",
            "fleet.growth ~ uniform(1.4,1.2)",
            "--samples",
            "10",
            "ext-facility",
        ])
        .output()
        .unwrap();
    assert_eq!(bad_dist.status.code(), Some(2));
}
