//! One benchmark per paper artifact: regenerating each figure and table from
//! the models. The point is twofold: (a) the harness re-runs every experiment
//! end to end on `cargo bench`, and (b) regeneration cost is tracked so the
//! reproduction stays cheap to iterate on.

use cc_bench::Bencher;
use cc_core::experiments::{self, Tag};
use cc_report::RunContext;
use std::hint::black_box;

fn main() {
    let ctx = RunContext::paper();
    for (group, tag) in [
        ("figures", Tag::Figure),
        ("tables", Tag::Table),
        ("extensions", Tag::Extension),
    ] {
        let bencher = Bencher::group(group);
        for entry in experiments::with_tags(&[tag]) {
            let experiment = entry.build();
            bencher.bench(entry.key, || black_box(experiment.run(&ctx)));
        }
    }
}
