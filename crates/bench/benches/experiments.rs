//! One Criterion benchmark per paper artifact: regenerating each figure and
//! table from the models. The point is twofold: (a) the harness re-runs every
//! experiment end to end on `cargo bench`, and (b) regeneration cost is
//! tracked so the reproduction stays cheap to iterate on.

use cc_core::experiments;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_experiments(c: &mut Criterion) {
    let mut figures = c.benchmark_group("figures");
    figures.sample_size(10);
    for e in experiments::all() {
        if matches!(e.id(), cc_report::ExperimentId::Figure(_)) {
            figures.bench_function(e.id().key(), |b| {
                b.iter(|| black_box(e.run()));
            });
        }
    }
    figures.finish();

    let mut tables = c.benchmark_group("tables");
    tables.sample_size(10);
    for e in experiments::all() {
        if matches!(e.id(), cc_report::ExperimentId::Table(_)) {
            tables.bench_function(e.id().key(), |b| {
                b.iter(|| black_box(e.run()));
            });
        }
    }
    tables.finish();

    let mut extensions = c.benchmark_group("extensions");
    extensions.sample_size(10);
    for e in experiments::all() {
        if matches!(e.id(), cc_report::ExperimentId::Extension(_)) {
            extensions.bench_function(e.id().key(), |b| {
                b.iter(|| black_box(e.run()));
            });
        }
    }
    extensions.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
