//! Model-level benchmarks and ablations: the hot paths of each substrate,
//! plus the design-choice ablations called out in DESIGN.md.

use cc_analysis::pareto::{frontier, Point};
use cc_analysis::uncertainty::{propagate, Triangular};
use cc_bench::Bencher;
use cc_data::ai_models::CnnModel;
use cc_dcsim::{CarbonAwareScheduler, DayProfile, Facility, ServerConfig};
use cc_fab::WaferFootprint;
use cc_socsim::{ExecutionModel, Network, PowerMonitor, UnitKind};
use cc_units::prelude::*;
use std::hint::black_box;

fn bench_socsim() {
    let g = Bencher::group("socsim");
    let model = ExecutionModel::pixel3();
    for cnn in CnnModel::ALL {
        let network = Network::build(cnn);
        g.bench(&format!("inference/{cnn}"), || {
            black_box(model.run(&network, UnitKind::Dsp).unwrap())
        });
    }
    // Ablation: sampled (Monsoon) measurement vs analytical energy.
    let network = Network::build(CnnModel::MobileNetV3);
    let report = model.run(&network, UnitKind::Cpu).unwrap();
    let static_power = model.soc().unit(UnitKind::Cpu).unwrap().static_power();
    g.bench("monitor_sampling_100_runs", || {
        let monitor = PowerMonitor::monsoon();
        black_box(monitor.measure_energy(&report, static_power, 100))
    });
}

fn bench_pareto() {
    let g = Bencher::group("pareto");
    for n in [10usize, 100, 1_000] {
        // Deterministic pseudo-random cloud (LCG) — no RNG dependency in the
        // hot loop.
        let mut state = 0x243f6a8885a308d3u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point<usize>> = (0..n)
            .map(|i| Point::new(next() * 100.0, next() * 100.0, i))
            .collect();
        g.bench(&format!("frontier/{n}"), || black_box(frontier(&pts)));
    }
}

fn bench_dcsim() {
    let g = Bencher::group("dcsim");
    g.bench("prineville_7yr", || {
        black_box(cc_dcsim::prineville::simulate())
    });
    g.bench("facility_30yr", || {
        let mut f = Facility::builder("bench", 2000, ServerConfig::web())
            .renewable_ramp(vec![0.0, 0.5, 1.0])
            .build();
        black_box(f.simulate(30))
    });
    // Ablation: carbon-aware vs uniform scheduling.
    let profile = DayProfile::solar_grid(5.0, 60.0, 15.0);
    g.bench("scheduler_uniform", || {
        black_box(CarbonAwareScheduler::uniform(&profile))
    });
    g.bench("scheduler_carbon_aware", || {
        black_box(CarbonAwareScheduler::carbon_aware(&profile))
    });
}

fn bench_fab_and_lca() {
    let g = Bencher::group("fab_lca");
    let wafer = WaferFootprint::tsmc_300mm();
    g.bench("wafer_renewable_sweep", || {
        black_box(wafer.renewable_sweep(&cc_fab::wafer::FIG14_FACTORS))
    });
    g.bench("category_summaries", || {
        black_box(cc_lca::inventory::all_categories())
    });
    let analysis = cc_lca::AmortizationAnalysis::new(
        CarbonMass::from_kg(25.0),
        CarbonIntensity::from_g_per_kwh(380.0),
    );
    g.bench("breakeven_solve", || {
        black_box(
            analysis
                .breakeven(Energy::from_joules(0.047), TimeSpan::from_millis(6.0))
                .unwrap(),
        )
    });
}

fn bench_extensions() {
    let g = Bencher::group("extensions_models");
    // DVFS sweep over the full modelled range.
    let cpu = *cc_socsim::Soc::snapdragon_845()
        .unit(UnitKind::Cpu)
        .expect("cpu");
    let network = Network::build(CnnModel::MobileNetV3);
    let scales: Vec<f64> = (3..=15).map(|i| f64::from(i) / 10.0).collect();
    g.bench("dvfs_sweep_13_points", || {
        black_box(cc_socsim::dvfs::sweep(&cpu, &network, &scales))
    });
    // Batched inference.
    let model = ExecutionModel::pixel3();
    g.bench("batch_256", || {
        black_box(cc_socsim::batch::run_batch(&model, &network, UnitKind::Dsp, 256).unwrap())
    });
    // Monte-Carlo propagation.
    let inputs = [
        Triangular::around(24_850.0, 0.20),
        Triangular::around(380.0, 0.15),
        Triangular::around(0.0447, 0.25),
    ];
    g.bench("monte_carlo_10k", || {
        black_box(propagate(&inputs, 10_000, 7, |x| {
            x[0] / ((x[2] / 3.6e6) * x[1])
        }))
    });
}

fn main() {
    bench_socsim();
    bench_pareto();
    bench_dcsim();
    bench_fab_and_lca();
    bench_extensions();
}
