//! Global ICT energy projections, 2010–2030 (Fig 1).
//!
//! The paper reproduces Andrae & Edler's optimistic and expected projections
//! of electricity use across consumer devices, networking and data centers.
//!
//! ## Reconstruction anchors
//!
//! * "On the basis of even optimistic estimates in 2015, ICT accounted for up
//!   to 5% of global energy demand. In fact, data centers alone accounted for
//!   1% of this demand."
//! * "By 2030, ICT is projected to account for 7% of global energy demand"
//!   (optimistic) and 20% (expected).

/// An ICT segment tracked by Fig 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Segment {
    /// Consumer devices (PCs, phones, TVs, home entertainment).
    ConsumerDevices,
    /// Wired and wireless networks.
    Networking,
    /// Data centers.
    Datacenter,
}

impl Segment {
    /// All segments in Fig 1 legend order.
    pub const ALL: [Self; 3] = [Self::ConsumerDevices, Self::Networking, Self::Datacenter];

    /// Human-readable label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::ConsumerDevices => "Consumer devices",
            Self::Networking => "Networking",
            Self::Datacenter => "Datacenter",
        }
    }
}

impl core::fmt::Display for Segment {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Projection scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Andrae & Edler "best case": efficiency gains mostly offset demand
    /// growth; ICT reaches ~7% of global demand by 2030.
    Optimistic,
    /// Andrae & Edler "expected case": ICT reaches ~20% of global demand by
    /// 2030.
    Expected,
}

impl Scenario {
    /// Both scenarios, optimistic first as in Fig 1 (top).
    pub const ALL: [Self; 2] = [Self::Optimistic, Self::Expected];

    /// Human-readable label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Optimistic => "Optimistic",
            Self::Expected => "Expected",
        }
    }
}

impl core::fmt::Display for Scenario {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Sample years of the digitized projection curves.
pub const YEARS: [u16; 5] = [2010, 2015, 2020, 2025, 2030];

/// Projected global electricity demand (all sectors) at [`YEARS`], in TWh.
pub const GLOBAL_DEMAND_TWH: [f64; 5] = [21_000.0, 22_500.0, 25_000.0, 27_500.0, 30_000.0];

/// Projected ICT electricity use at [`YEARS`] per segment, in TWh.
///
/// Optimistic totals reach 5.3% of global demand in 2015 and 6.7% in 2030;
/// expected totals reach 20% of global demand in 2030.
#[must_use]
pub fn segment_twh(scenario: Scenario, segment: Segment) -> [f64; 5] {
    match (scenario, segment) {
        (Scenario::Optimistic, Segment::ConsumerDevices) => [500.0, 550.0, 520.0, 480.0, 450.0],
        (Scenario::Optimistic, Segment::Networking) => [250.0, 350.0, 450.0, 550.0, 650.0],
        (Scenario::Optimistic, Segment::Datacenter) => [200.0, 290.0, 400.0, 600.0, 900.0],
        (Scenario::Expected, Segment::ConsumerDevices) => [550.0, 700.0, 900.0, 1_100.0, 1_400.0],
        (Scenario::Expected, Segment::Networking) => [300.0, 500.0, 900.0, 1_500.0, 2_300.0],
        (Scenario::Expected, Segment::Datacenter) => [250.0, 400.0, 800.0, 1_500.0, 2_300.0],
    }
}

/// Total ICT electricity use at [`YEARS`] for a scenario, in TWh.
#[must_use]
pub fn total_twh(scenario: Scenario) -> [f64; 5] {
    let mut total = [0.0; 5];
    for segment in Segment::ALL {
        for (t, s) in total.iter_mut().zip(segment_twh(scenario, segment)) {
            *t += s;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimistic_2015_share_is_about_5_percent() {
        let total = total_twh(Scenario::Optimistic)[1];
        let share = total / GLOBAL_DEMAND_TWH[1];
        assert!(share > 0.045 && share < 0.055, "share {share}");
    }

    #[test]
    fn optimistic_2030_share_is_about_7_percent() {
        let total = total_twh(Scenario::Optimistic)[4];
        let share = total / GLOBAL_DEMAND_TWH[4];
        assert!((share - 0.07).abs() < 0.005, "share {share}");
    }

    #[test]
    fn expected_2030_share_is_about_20_percent() {
        let total = total_twh(Scenario::Expected)[4];
        let share = total / GLOBAL_DEMAND_TWH[4];
        assert!((share - 0.20).abs() < 0.005, "share {share}");
    }

    #[test]
    fn datacenters_alone_about_1_percent_in_2015() {
        let dc = segment_twh(Scenario::Optimistic, Segment::Datacenter)[1];
        let share = dc / GLOBAL_DEMAND_TWH[1];
        assert!(share > 0.009 && share < 0.016, "share {share}");
    }

    #[test]
    fn expected_dominates_optimistic_everywhere() {
        for segment in Segment::ALL {
            let opt = segment_twh(Scenario::Optimistic, segment);
            let exp = segment_twh(Scenario::Expected, segment);
            for (o, e) in opt.iter().zip(exp.iter()) {
                assert!(e >= o, "{segment}: expected {e} < optimistic {o}");
            }
        }
    }

    #[test]
    fn expected_totals_grow_monotonically() {
        let totals = total_twh(Scenario::Expected);
        for pair in totals.windows(2) {
            assert!(pair[1] > pair[0]);
        }
    }
}
