//! Descriptors of the CNN inference workloads measured in Figs 9 and 10.
//!
//! The compute/parameter figures are the standard published values for each
//! network at 224×224 single-image inference. They seed the layer graphs in
//! `cc-socsim` and document the "algorithmic innovation" axis of the paper
//! (ResNet-50/Inception v3 → MobileNet v3 shrinks multiply-accumulate work by
//! more than an order of magnitude).

/// A convolutional-network workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CnnModel {
    /// ResNet-50 (He et al., 2016).
    ResNet50,
    /// Inception v3 (Szegedy et al., 2015).
    InceptionV3,
    /// MobileNet v1 (Howard et al., 2017) — the Fig 8 benchmark workload.
    MobileNetV1,
    /// MobileNet v2 (Sandler et al., 2018).
    MobileNetV2,
    /// MobileNet v3-Large (Howard et al., 2019).
    MobileNetV3,
}

impl CnnModel {
    /// All models in Fig 9's x-axis order, plus MobileNet v1 (Fig 8's
    /// workload) at the position matching its release year.
    pub const ALL: [Self; 5] = [
        Self::ResNet50,
        Self::InceptionV3,
        Self::MobileNetV1,
        Self::MobileNetV2,
        Self::MobileNetV3,
    ];

    /// The four models shown in Figs 9 and 10.
    pub const FIG9: [Self; 4] = [
        Self::ResNet50,
        Self::InceptionV3,
        Self::MobileNetV2,
        Self::MobileNetV3,
    ];

    /// Publication year.
    #[must_use]
    pub fn year(self) -> u16 {
        match self {
            Self::ResNet50 => 2015,
            Self::InceptionV3 => 2015,
            Self::MobileNetV1 => 2017,
            Self::MobileNetV2 => 2018,
            Self::MobileNetV3 => 2019,
        }
    }

    /// Multiply-accumulate operations per 224×224 inference, in billions
    /// (GMACs). One MAC is two FLOPs.
    #[must_use]
    pub fn gmacs(self) -> f64 {
        match self {
            Self::ResNet50 => 4.09,
            Self::InceptionV3 => 5.70,
            Self::MobileNetV1 => 0.569,
            Self::MobileNetV2 => 0.300,
            Self::MobileNetV3 => 0.219,
        }
    }

    /// Parameter count, in millions.
    #[must_use]
    pub fn params_millions(self) -> f64 {
        match self {
            Self::ResNet50 => 25.6,
            Self::InceptionV3 => 23.8,
            Self::MobileNetV1 => 4.2,
            Self::MobileNetV2 => 3.4,
            Self::MobileNetV3 => 5.4,
        }
    }

    /// Approximate activation traffic per inference, in megabytes (fp32,
    /// reading and writing each intermediate feature map once).
    #[must_use]
    pub fn activation_mbytes(self) -> f64 {
        match self {
            Self::ResNet50 => 103.0,
            Self::InceptionV3 => 89.0,
            Self::MobileNetV1 => 45.0,
            Self::MobileNetV2 => 52.0,
            Self::MobileNetV3 => 35.0,
        }
    }

    /// Fraction of MACs in depthwise convolutions (low arithmetic intensity;
    /// runs far below peak on every unit).
    #[must_use]
    pub fn depthwise_mac_fraction(self) -> f64 {
        match self {
            Self::ResNet50 | Self::InceptionV3 => 0.0,
            Self::MobileNetV1 => 0.03,
            Self::MobileNetV2 => 0.06,
            Self::MobileNetV3 => 0.07,
        }
    }

    /// Human-readable label used in Figs 9 and 10.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::ResNet50 => "ResNet-50",
            Self::InceptionV3 => "Inception v3",
            Self::MobileNetV1 => "MobileNet v1",
            Self::MobileNetV2 => "MobileNet v2",
            Self::MobileNetV3 => "MobileNet v3",
        }
    }
}

impl core::fmt::Display for CnnModel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// The ImageNet training-set size the paper uses for scale ("the ImageNet
/// training set consists of 14 million images").
pub const IMAGENET_TRAIN_IMAGES: u64 = 14_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithmic_improvement_exceeds_an_order_of_magnitude() {
        // Inception v3 -> MobileNet v3 is the paper's "algorithmic
        // innovation" axis: 5.7 / 0.219 = 26x fewer MACs.
        let ratio = CnnModel::InceptionV3.gmacs() / CnnModel::MobileNetV3.gmacs();
        assert!(ratio > 20.0 && ratio < 30.0, "ratio {ratio}");
    }

    #[test]
    fn mobilenets_are_small() {
        for m in [
            CnnModel::MobileNetV1,
            CnnModel::MobileNetV2,
            CnnModel::MobileNetV3,
        ] {
            assert!(m.gmacs() < 1.0);
            assert!(m.params_millions() < 6.0);
            assert!(m.depthwise_mac_fraction() > 0.0);
        }
        assert_eq!(CnnModel::ResNet50.depthwise_mac_fraction(), 0.0);
    }

    #[test]
    fn years_are_ordered() {
        assert!(CnnModel::MobileNetV3.year() > CnnModel::InceptionV3.year());
    }

    #[test]
    fn display_labels() {
        assert_eq!(CnnModel::MobileNetV2.to_string(), "MobileNet v2");
    }
}
