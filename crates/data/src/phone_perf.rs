//! MobileNet v1 inference throughput per phone (Fig 8).
//!
//! Each point pairs a phone's published AI-inference throughput (MobileNet v1
//! images/second, Geekbench-style measurement) with its **manufacturing**
//! carbon footprint, which is looked up from the [`crate::devices`] dataset so
//! the two stay consistent.
//!
//! ## Reconstruction anchors (Fig 8 / §III-C)
//!
//! * iPhone 11 Pro: 75 img/s at 66 kg CO₂e manufacturing.
//! * Pixel 3a: 20 img/s at 45 kg CO₂e.
//! * iPhone X (2017): 35 img/s at 63 kg CO₂e.
//! * iPhone 11 (2019): double the iPhone X's throughput at slightly lower
//!   (≈ 60 kg) manufacturing CO₂e.

use crate::devices::{self, ProductLca};
use cc_units::CarbonMass;

/// A (throughput, manufacturing-footprint) point on the Fig 8 scatter plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhonePerfPoint {
    /// Device name; must exist in [`crate::devices`].
    pub device: &'static str,
    /// MobileNet v1 inference throughput, images per second.
    pub throughput_ips: f64,
}

/// The Fig 8 measurement set.
pub const ALL: [PhonePerfPoint; 11] = [
    PhonePerfPoint {
        device: "Honor 5C",
        throughput_ips: 4.0,
    },
    PhonePerfPoint {
        device: "Honor 8 Lite",
        throughput_ips: 5.0,
    },
    PhonePerfPoint {
        device: "iPhone 6s",
        throughput_ips: 8.0,
    },
    PhonePerfPoint {
        device: "iPhone 7",
        throughput_ips: 12.0,
    },
    PhonePerfPoint {
        device: "Pixel 3",
        throughput_ips: 15.0,
    },
    PhonePerfPoint {
        device: "Pixel 3a",
        throughput_ips: 20.0,
    },
    PhonePerfPoint {
        device: "iPhone X",
        throughput_ips: 35.0,
    },
    PhonePerfPoint {
        device: "iPhone XR",
        throughput_ips: 45.0,
    },
    PhonePerfPoint {
        device: "iPhone 11",
        throughput_ips: 70.0,
    },
    PhonePerfPoint {
        device: "iPhone 11 Pro",
        throughput_ips: 75.0,
    },
    PhonePerfPoint {
        device: "iPhone SE (2nd gen)",
        throughput_ips: 60.0,
    },
];

impl PhonePerfPoint {
    /// The device's LCA record.
    ///
    /// # Panics
    ///
    /// Panics if the device name is missing from [`crate::devices`]; the
    /// dataset tests guarantee it never is.
    #[must_use]
    pub fn lca(&self) -> &'static ProductLca {
        devices::find(self.device)
            .unwrap_or_else(|| panic!("phone_perf device `{}` missing from devices", self.device))
    }

    /// Manufacturing footprint of the device (the Fig 8 x-axis).
    #[must_use]
    pub fn manufacturing(&self) -> CarbonMass {
        self.lca().production()
    }

    /// Release year (drives the 2017/2019 Pareto cohorts).
    #[must_use]
    pub fn year(&self) -> u16 {
        self.lca().year
    }
}

/// All points from devices released in or before `year`.
pub fn cohort(year: u16) -> impl Iterator<Item = &'static PhonePerfPoint> {
    ALL.iter().filter(move |p| p.year() <= year)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_point_resolves_to_a_device() {
        for p in &ALL {
            let lca = p.lca();
            assert!(lca.total_kg > 0.0);
        }
    }

    #[test]
    fn fig8_anchors() {
        let pro = ALL.iter().find(|p| p.device == "iPhone 11 Pro").unwrap();
        assert_eq!(pro.throughput_ips, 75.0);
        assert!((pro.manufacturing().as_kg() - 66.0).abs() < 0.5);

        let p3a = ALL.iter().find(|p| p.device == "Pixel 3a").unwrap();
        assert_eq!(p3a.throughput_ips, 20.0);
        assert!((p3a.manufacturing().as_kg() - 45.0).abs() < 0.5);

        let x = ALL.iter().find(|p| p.device == "iPhone X").unwrap();
        let i11 = ALL.iter().find(|p| p.device == "iPhone 11").unwrap();
        // "the iPhone 11 (2019) doubled that performance at a slightly lower
        // [manufacturing footprint]".
        assert!((i11.throughput_ips / x.throughput_ips - 2.0).abs() <= 0.1);
        assert!(i11.manufacturing() < x.manufacturing());
    }

    #[test]
    fn cohorts_grow_over_time() {
        let c2017 = cohort(2017).count();
        let c2019 = cohort(2019).count();
        assert!(c2017 >= 5);
        assert!(c2019 > c2017);
    }
}
