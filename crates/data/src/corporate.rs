//! Corporate GHG inventories and breakdowns.
//!
//! Digitized from the sustainability reports the paper cites (Apple 2019,
//! Facebook 2019, Google 2019, Intel 2020, AMD 2020).
//!
//! ## Reconstruction anchors
//!
//! * Apple FY2019: total 25 Mt CO₂e; manufacturing 74% of total; product use
//!   19%; integrated circuits ≈ 33% of total; full hardware life cycle > 98%
//!   (Fig 5, Takeaway 1).
//! * Google 2018: Scope 3 = 14.0 Mt = 21× Scope 2 (market) = 684 kt; Scope 3
//!   grew ≈ 5× from 2017 after a hardware-disclosure change, while energy
//!   consumption grew only ≈ 30% (Fig 11, §IV-A).
//! * Facebook 2019: Scope 3 = 5.8 Mt = 23× Scope 2 (market) = 252 kt
//!   (Fig 11, Contribution 3).
//! * Facebook 2018 opex/capex pies (Fig 2): with renewables (market-based
//!   Scope 2), capex ≈ 82%; with the location-based counterfactual and
//!   pre-disclosure Scope 3, opex ≈ 65%.
//! * Facebook 2019 Scope 3 categories: capital goods 48%, purchased goods
//!   39%, travel 10%, other 3% (Fig 12).
//! * Intel: ≈ 60% of life-cycle emissions from hardware use on the US grid;
//!   only 9.7% of fab energy is non-renewable. AMD: ≈ 45% from hardware use
//!   (Fig 13, Takeaway 9).

use cc_units::CarbonMass;

// ---------------------------------------------------------------------------
// Apple FY2019 (Fig 5)
// ---------------------------------------------------------------------------

/// One slice of Apple's FY2019 footprint (share of the company total).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppleSlice {
    /// Slice label as shown in Fig 5.
    pub label: &'static str,
    /// Top-level group (`"Manufacturing"`, `"Product Use"`, …).
    pub group: &'static str,
    /// Share of Apple's total footprint, as a fraction.
    pub share: f64,
}

/// Apple's total FY2019 footprint: 25 million metric tons CO₂e.
#[must_use]
pub fn apple_2019_total() -> CarbonMass {
    CarbonMass::from_mt(25.0)
}

/// Apple FY2019 footprint breakdown (Fig 5). Shares sum to 1.
///
/// Manufacturing sums to 0.74, product use to 0.19, and integrated circuits
/// alone are 0.33 — the three shares the paper quotes.
pub const APPLE_2019_BREAKDOWN: [AppleSlice; 16] = [
    AppleSlice {
        label: "Integrated circuits",
        group: "Manufacturing",
        share: 0.33,
    },
    AppleSlice {
        label: "Boards & flexes",
        group: "Manufacturing",
        share: 0.10,
    },
    AppleSlice {
        label: "Aluminum",
        group: "Manufacturing",
        share: 0.09,
    },
    AppleSlice {
        label: "Displays",
        group: "Manufacturing",
        share: 0.07,
    },
    AppleSlice {
        label: "Electronics",
        group: "Manufacturing",
        share: 0.05,
    },
    AppleSlice {
        label: "Assembly",
        group: "Manufacturing",
        share: 0.04,
    },
    AppleSlice {
        label: "Steel",
        group: "Manufacturing",
        share: 0.03,
    },
    AppleSlice {
        label: "Other manufacturing",
        group: "Manufacturing",
        share: 0.03,
    },
    AppleSlice {
        label: "iOS device use",
        group: "Product Use",
        share: 0.11,
    },
    AppleSlice {
        label: "macOS active use",
        group: "Product Use",
        share: 0.04,
    },
    AppleSlice {
        label: "macOS idle use",
        group: "Product Use",
        share: 0.02,
    },
    AppleSlice {
        label: "Other product use",
        group: "Product Use",
        share: 0.02,
    },
    AppleSlice {
        label: "Product transport",
        group: "Transport",
        share: 0.05,
    },
    AppleSlice {
        label: "Corporate facilities",
        group: "Facilities",
        share: 0.013,
    },
    AppleSlice {
        label: "Recycling",
        group: "End-of-life",
        share: 0.004,
    },
    AppleSlice {
        label: "Business travel",
        group: "Facilities",
        share: 0.003,
    },
];

/// Sum of the shares for one Fig 5 group.
#[must_use]
pub fn apple_2019_group_share(group: &str) -> f64 {
    APPLE_2019_BREAKDOWN
        .iter()
        .filter(|s| s.group == group)
        .map(|s| s.share)
        .sum()
}

// ---------------------------------------------------------------------------
// Facebook & Google scope series (Fig 11)
// ---------------------------------------------------------------------------

/// One year of a corporate GHG inventory, in million metric tons CO₂e.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScopeYear {
    /// Reporting year.
    pub year: u16,
    /// Scope 1 (direct) emissions, Mt CO₂e.
    pub scope1_mt: f64,
    /// Scope 2 location-based (grid counterfactual), Mt CO₂e.
    pub scope2_location_mt: f64,
    /// Scope 2 market-based (after renewable procurement), Mt CO₂e.
    pub scope2_market_mt: f64,
    /// Scope 3 (supply chain), Mt CO₂e.
    pub scope3_mt: f64,
}

impl ScopeYear {
    /// Opex-related emissions per the paper: Scope 1 + market-based Scope 2.
    #[must_use]
    pub fn opex(&self) -> CarbonMass {
        CarbonMass::from_mt(self.scope1_mt + self.scope2_market_mt)
    }

    /// Capex-related emissions per the paper: Scope 3 (dominated by
    /// construction and hardware manufacturing).
    #[must_use]
    pub fn capex(&self) -> CarbonMass {
        CarbonMass::from_mt(self.scope3_mt)
    }

    /// Scope 3 to market-based Scope 2 ratio (the paper's "21×"/"23×").
    #[must_use]
    pub fn scope3_to_scope2_market(&self) -> f64 {
        self.scope3_mt / self.scope2_market_mt
    }
}

/// Facebook's inventory, 2014–2019. The 2018 entry reflects the year the
/// hardware-footprint disclosure practice changed (see Fig 11 annotation);
/// [`FACEBOOK_2018_SCOPE3_LEGACY_MT`] preserves the pre-change comparable.
pub const FACEBOOK: [ScopeYear; 6] = [
    ScopeYear {
        year: 2014,
        scope1_mt: 0.010,
        scope2_location_mt: 0.36,
        scope2_market_mt: 0.28,
        scope3_mt: 0.45,
    },
    ScopeYear {
        year: 2015,
        scope1_mt: 0.013,
        scope2_location_mt: 0.48,
        scope2_market_mt: 0.33,
        scope3_mt: 0.62,
    },
    ScopeYear {
        year: 2016,
        scope1_mt: 0.017,
        scope2_location_mt: 0.72,
        scope2_market_mt: 0.41,
        scope3_mt: 0.86,
    },
    ScopeYear {
        year: 2017,
        scope1_mt: 0.022,
        scope2_location_mt: 1.04,
        scope2_market_mt: 0.60,
        scope3_mt: 1.20,
    },
    ScopeYear {
        year: 2018,
        scope1_mt: 0.036,
        scope2_location_mt: 1.55,
        scope2_market_mt: 0.39,
        scope3_mt: 2.00,
    },
    ScopeYear {
        year: 2019,
        scope1_mt: 0.046,
        scope2_location_mt: 2.20,
        scope2_market_mt: 0.252,
        scope3_mt: 5.80,
    },
];

/// Facebook's 2018 Scope 3 under the pre-change disclosure practice, used by
/// the Fig 2 "without renewables" pie (Mt CO₂e).
pub const FACEBOOK_2018_SCOPE3_LEGACY_MT: f64 = 0.86;

/// Google's inventory, 2013–2018. The 2018 Scope 3 jump is the
/// hardware-footprint disclosure change the paper discusses.
pub const GOOGLE: [ScopeYear; 6] = [
    ScopeYear {
        year: 2013,
        scope1_mt: 0.02,
        scope2_location_mt: 1.60,
        scope2_market_mt: 1.10,
        scope3_mt: 2.00,
    },
    ScopeYear {
        year: 2014,
        scope1_mt: 0.03,
        scope2_location_mt: 1.90,
        scope2_market_mt: 0.90,
        scope3_mt: 2.20,
    },
    ScopeYear {
        year: 2015,
        scope1_mt: 0.04,
        scope2_location_mt: 2.30,
        scope2_market_mt: 0.70,
        scope3_mt: 2.40,
    },
    ScopeYear {
        year: 2016,
        scope1_mt: 0.05,
        scope2_location_mt: 2.90,
        scope2_market_mt: 0.60,
        scope3_mt: 2.60,
    },
    ScopeYear {
        year: 2017,
        scope1_mt: 0.07,
        scope2_location_mt: 3.80,
        scope2_market_mt: 0.65,
        scope3_mt: 2.80,
    },
    ScopeYear {
        year: 2018,
        scope1_mt: 0.08,
        scope2_location_mt: 5.00,
        scope2_market_mt: 0.684,
        scope3_mt: 14.00,
    },
];

/// Looks a year up in a scope series.
#[must_use]
pub fn year_of(series: &[ScopeYear], year: u16) -> Option<&ScopeYear> {
    series.iter().find(|y| y.year == year)
}

// ---------------------------------------------------------------------------
// Facebook Scope 3 categories (Fig 12)
// ---------------------------------------------------------------------------

/// One category of Facebook's 2019 Scope 3 emissions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scope3Category {
    /// Category label (GHG Protocol category grouping used by Fig 12).
    pub label: &'static str,
    /// Share of Scope 3 total.
    pub share: f64,
    /// Whether the paper classifies the category as capex-related.
    pub is_capex: bool,
}

/// Facebook 2019 Scope 3 breakdown (Fig 12): capital goods (hardware,
/// infrastructure, construction) 48%, purchased goods 39%, travel 10%,
/// other 3%.
pub const FACEBOOK_2019_SCOPE3: [Scope3Category; 4] = [
    Scope3Category {
        label: "Capital goods",
        share: 0.48,
        is_capex: true,
    },
    Scope3Category {
        label: "Purchased goods",
        share: 0.39,
        is_capex: true,
    },
    Scope3Category {
        label: "Travel",
        share: 0.10,
        is_capex: false,
    },
    Scope3Category {
        label: "Other",
        share: 0.03,
        is_capex: false,
    },
];

// ---------------------------------------------------------------------------
// Intel / AMD life-cycle shares (Fig 13)
// ---------------------------------------------------------------------------

/// One component of a chip vendor's reported product-life-cycle footprint,
/// at the baseline (US average) grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifecycleComponent {
    /// Component label as in Fig 13.
    pub label: &'static str,
    /// Share of the baseline life-cycle total.
    pub share: f64,
    /// Whether the component scales with the carbon intensity of the energy
    /// that powers hardware *use* (the quantity swept in Fig 13).
    pub scales_with_use_energy: bool,
}

/// Intel's reported life-cycle breakdown at the US-grid baseline (Fig 13,
/// top). Hardware use is ≈ 60% of the total; fab energy is mostly renewable
/// already (only 9.7% non-renewable), so "indirect emission" is small.
pub const INTEL_LIFECYCLE: [LifecycleComponent; 7] = [
    LifecycleComponent {
        label: "HW use",
        share: 0.60,
        scales_with_use_energy: true,
    },
    LifecycleComponent {
        label: "Direct emission",
        share: 0.15,
        scales_with_use_energy: false,
    },
    LifecycleComponent {
        label: "Raw materials",
        share: 0.08,
        scales_with_use_energy: false,
    },
    LifecycleComponent {
        label: "Indirect emission",
        share: 0.05,
        scales_with_use_energy: false,
    },
    LifecycleComponent {
        label: "HW transport",
        share: 0.04,
        scales_with_use_energy: false,
    },
    LifecycleComponent {
        label: "Travel",
        share: 0.03,
        scales_with_use_energy: false,
    },
    LifecycleComponent {
        label: "Other",
        share: 0.05,
        scales_with_use_energy: false,
    },
];

/// AMD's reported life-cycle breakdown at the US-grid baseline (Fig 13,
/// bottom). Hardware use is ≈ 45%; raw materials & manufacturing dominate
/// the rest (AMD is fabless, so manufacturing shows up as purchased goods).
pub const AMD_LIFECYCLE: [LifecycleComponent; 6] = [
    LifecycleComponent {
        label: "HW use",
        share: 0.45,
        scales_with_use_energy: true,
    },
    LifecycleComponent {
        label: "Raw materials & manufacturing",
        share: 0.40,
        scales_with_use_energy: false,
    },
    LifecycleComponent {
        label: "HW transport",
        share: 0.05,
        scales_with_use_energy: false,
    },
    LifecycleComponent {
        label: "Travel",
        share: 0.04,
        scales_with_use_energy: false,
    },
    LifecycleComponent {
        label: "Indirect emission",
        share: 0.04,
        scales_with_use_energy: false,
    },
    LifecycleComponent {
        label: "Other",
        share: 0.02,
        scales_with_use_energy: false,
    },
];

/// Fraction of Intel fab energy that is non-renewable ("only 9.7% of the
/// energy consumed by Intel fabs comes from nonrenewable sources", §V).
pub const INTEL_NONRENEWABLE_FAB_ENERGY: f64 = 0.097;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apple_shares_sum_to_one() {
        let total: f64 = APPLE_2019_BREAKDOWN.iter().map(|s| s.share).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn apple_paper_anchors() {
        assert!((apple_2019_group_share("Manufacturing") - 0.74).abs() < 1e-9);
        assert!((apple_2019_group_share("Product Use") - 0.19).abs() < 1e-9);
        // ICs alone exceed all of product use (Takeaway 1).
        let ics = APPLE_2019_BREAKDOWN[0].share;
        assert_eq!(APPLE_2019_BREAKDOWN[0].label, "Integrated circuits");
        assert!((ics - 0.33).abs() < 1e-9);
        assert!(ics > apple_2019_group_share("Product Use"));
        // Hardware life cycle (everything but facilities/travel) > 98%.
        let lifecycle = 1.0 - apple_2019_group_share("Facilities");
        assert!(lifecycle > 0.98);
        assert_eq!(apple_2019_total().as_tonnes(), 25_000_000.0);
    }

    #[test]
    fn google_2018_anchors() {
        let y2018 = year_of(&GOOGLE, 2018).unwrap();
        let ratio = y2018.scope3_to_scope2_market();
        assert!((ratio - 20.5).abs() < 1.0, "paper: 21x, got {ratio}");
        assert_eq!(y2018.scope3_mt, 14.0);
        assert!((y2018.scope2_market_mt - 0.684).abs() < 1e-9);
        // Disclosure change: 5x jump from 2017.
        let y2017 = year_of(&GOOGLE, 2017).unwrap();
        assert!((y2018.scope3_mt / y2017.scope3_mt - 5.0).abs() < 0.1);
    }

    #[test]
    fn facebook_2019_anchors() {
        let y = year_of(&FACEBOOK, 2019).unwrap();
        let ratio = y.scope3_to_scope2_market();
        assert!((ratio - 23.0).abs() < 0.5, "paper: 23x, got {ratio}");
        assert_eq!(y.scope3_mt, 5.8);
    }

    #[test]
    fn facebook_2018_pie_anchors() {
        // Fig 2 bottom-right pies.
        let y = year_of(&FACEBOOK, 2018).unwrap();
        // With renewables: opex = S1 + market S2 vs capex = S3.
        let opex = y.scope1_mt + y.scope2_market_mt;
        let capex_share = y.scope3_mt / (y.scope3_mt + opex);
        assert!((capex_share - 0.82).abs() < 0.01, "capex {capex_share}");
        // Without renewables: opex = S1 + location S2 vs the pre-disclosure
        // Scope 3 comparable.
        let opex_loc = y.scope1_mt + y.scope2_location_mt;
        let opex_share = opex_loc / (opex_loc + FACEBOOK_2018_SCOPE3_LEGACY_MT);
        assert!((opex_share - 0.65).abs() < 0.01, "opex {opex_share}");
    }

    #[test]
    fn operational_carbon_decreases_while_footprint_grows() {
        // Takeaway 8: market-based Scope 2 falls even as location-based
        // (a proxy for energy consumed) rises.
        let first = &FACEBOOK[0];
        let last = &FACEBOOK[FACEBOOK.len() - 1];
        assert!(last.scope2_location_mt > first.scope2_location_mt * 3.0);
        assert!(last.scope2_market_mt < first.scope2_market_mt * 1.0);
    }

    #[test]
    fn scope_series_are_sorted_by_year() {
        for series in [&FACEBOOK[..], &GOOGLE[..]] {
            for pair in series.windows(2) {
                assert!(pair[0].year < pair[1].year);
            }
        }
    }

    #[test]
    fn fb_scope3_categories_sum_to_one() {
        let total: f64 = FACEBOOK_2019_SCOPE3.iter().map(|c| c.share).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let capital = FACEBOOK_2019_SCOPE3
            .iter()
            .find(|c| c.label == "Capital goods")
            .unwrap();
        assert!((capital.share - 0.48).abs() < 1e-9);
        assert!(capital.is_capex);
    }

    #[test]
    fn intel_amd_lifecycle_shares() {
        let intel: f64 = INTEL_LIFECYCLE.iter().map(|c| c.share).sum();
        assert!((intel - 1.0).abs() < 1e-9);
        let amd: f64 = AMD_LIFECYCLE.iter().map(|c| c.share).sum();
        assert!((amd - 1.0).abs() < 1e-9);
        // Takeaway 9 anchors: use shares at the baseline grid.
        assert!((INTEL_LIFECYCLE[0].share - 0.60).abs() < 1e-9);
        assert!((AMD_LIFECYCLE[0].share - 0.45).abs() < 1e-9);
        // Exactly one component scales with use energy in each table.
        assert_eq!(
            INTEL_LIFECYCLE
                .iter()
                .filter(|c| c.scales_with_use_energy)
                .count(),
            1
        );
        assert_eq!(
            AMD_LIFECYCLE
                .iter()
                .filter(|c| c.scales_with_use_energy)
                .count(),
            1
        );
    }

    #[test]
    fn opex_capex_accessors() {
        let y = year_of(&FACEBOOK, 2019).unwrap();
        assert!((y.opex().as_mt() - 0.298).abs() < 1e-9);
        assert_eq!(y.capex().as_mt(), 5.8);
        assert!(year_of(&FACEBOOK, 1999).is_none());
    }
}
