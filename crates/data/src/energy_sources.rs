//! Table II: carbon efficiency of electricity-generation technologies.
//!
//! Carbon intensity in g CO₂e/kWh and energy-payback time in months, exactly
//! as reported in the paper (sources: Weißbach et al., NREL, Bonou et al.,
//! Madsen & Bentsen, Li et al.).

use cc_units::{CarbonIntensity, TimeSpan};

/// An electricity-generation technology from Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EnergySource {
    /// Coal-fired generation (820 g CO₂e/kWh) — the dirtiest source in the
    /// table and the baseline of Fig 14's renewable sweep.
    Coal,
    /// Natural-gas generation (490 g CO₂e/kWh).
    Gas,
    /// Biomass (230 g CO₂e/kWh).
    Biomass,
    /// Photovoltaic solar (41 g CO₂e/kWh) — together with wind, the source
    /// that "frequently power\[s\] data centers".
    Solar,
    /// Geothermal (38 g CO₂e/kWh).
    Geothermal,
    /// Hydropower (24 g CO₂e/kWh).
    Hydropower,
    /// Nuclear (12 g CO₂e/kWh).
    Nuclear,
    /// Onshore/offshore wind (11 g CO₂e/kWh) — the cleanest source in the
    /// table; coal/wind is the paper's "70×" improvement bound.
    Wind,
}

impl EnergySource {
    /// All sources, ordered dirtiest → cleanest as in Table II.
    pub const ALL: [Self; 8] = [
        Self::Coal,
        Self::Gas,
        Self::Biomass,
        Self::Solar,
        Self::Geothermal,
        Self::Hydropower,
        Self::Nuclear,
        Self::Wind,
    ];

    /// Carbon intensity of the source (Table II, column 2).
    #[must_use]
    pub fn carbon_intensity(self) -> CarbonIntensity {
        let g = match self {
            Self::Coal => 820.0,
            Self::Gas => 490.0,
            Self::Biomass => 230.0,
            Self::Solar => 41.0,
            Self::Geothermal => 38.0,
            Self::Hydropower => 24.0,
            Self::Nuclear => 12.0,
            Self::Wind => 11.0,
        };
        CarbonIntensity::from_g_per_kwh(g)
    }

    /// Energy-payback time of the source (Table II, column 3). For entries
    /// the paper reports as ranges ("~12–36 months") the midpoint is used;
    /// for bounds ("≤ 12") the bound itself.
    #[must_use]
    pub fn energy_payback(self) -> TimeSpan {
        let months = match self {
            Self::Coal => 2.0,
            Self::Gas => 1.0,
            Self::Biomass => 12.0,
            Self::Solar => 36.0,
            Self::Geothermal => 72.0,
            Self::Hydropower => 24.0,
            Self::Nuclear => 2.0,
            Self::Wind => 12.0,
        };
        TimeSpan::from_months(months)
    }

    /// Whether the paper treats the source as renewable/"green" (solar, wind,
    /// nuclear, hydropower, geothermal, biomass) as opposed to "brown"
    /// (coal, gas).
    #[must_use]
    pub fn is_green(self) -> bool {
        !matches!(self, Self::Coal | Self::Gas)
    }

    /// Human-readable name, matching the Table II row label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Coal => "Coal",
            Self::Gas => "Gas",
            Self::Biomass => "Biomass",
            Self::Solar => "Solar",
            Self::Geothermal => "Geothermal",
            Self::Hydropower => "Hydropower",
            Self::Nuclear => "Nuclear",
            Self::Wind => "Wind",
        }
    }
}

impl core::fmt::Display for EnergySource {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_dirtiest_to_cleanest() {
        let intensities: Vec<f64> = EnergySource::ALL
            .iter()
            .map(|s| s.carbon_intensity().as_g_per_kwh())
            .collect();
        for pair in intensities.windows(2) {
            assert!(pair[0] >= pair[1], "Table II ordering violated: {pair:?}");
        }
    }

    #[test]
    fn paper_headline_ratios() {
        // "green energy ... produces up to 30× fewer GHG emissions" —
        // gas (dirtiest brown commonly displaced... ) vs solar/wind band.
        let coal = EnergySource::Coal.carbon_intensity();
        let wind = EnergySource::Wind.carbon_intensity();
        let solar = EnergySource::Solar.carbon_intensity();
        // Fig 14's "best case: replacing coal with 100% wind energy, for a
        // ~70× improvement".
        assert!((coal / wind) > 70.0 && (coal / wind) < 80.0);
        // gas vs solar is roughly one order of magnitude.
        let gas = EnergySource::Gas.carbon_intensity();
        assert!(gas / solar > 10.0);
    }

    #[test]
    fn green_classification() {
        assert!(!EnergySource::Coal.is_green());
        assert!(!EnergySource::Gas.is_green());
        assert!(EnergySource::Solar.is_green());
        assert!(EnergySource::Wind.is_green());
        assert!(EnergySource::Nuclear.is_green());
    }

    #[test]
    fn payback_times_match_table() {
        assert_eq!(
            EnergySource::Geothermal
                .energy_payback()
                .as_months()
                .round(),
            72.0
        );
        assert_eq!(EnergySource::Gas.energy_payback().as_months().round(), 1.0);
        assert_eq!(
            EnergySource::Solar.energy_payback().as_months().round(),
            36.0
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(EnergySource::Hydropower.to_string(), "Hydropower");
    }
}
