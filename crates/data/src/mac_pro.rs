//! The two Apple Mac Pro configurations of Table IV.
//!
//! The paper uses these to show that "higher-performance hardware incurs
//! higher manufacturing-related carbon emissions": the scaled-up
//! configuration has 4×/8×/16× the GPU flops / memory bandwidth / capacity
//! and ≈ 2.7× the manufacturing CO₂.

use cc_units::{CarbonMass, Power};

/// One Mac Pro configuration (Table IV column).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacProConfig {
    /// Configuration label.
    pub name: &'static str,
    /// CPU cores.
    pub cpu_cores: u32,
    /// Hardware threads per core.
    pub threads_per_core: u32,
    /// DRAM capacity in GB.
    pub dram_gb: u32,
    /// Storage capacity in GB.
    pub storage_gb: u32,
    /// GPU peak performance in teraflops.
    pub gpu_tflops: f64,
    /// GPU memory bandwidth in GB/s.
    pub gpu_mem_bw_gbps: f64,
    /// System thermal design power in watts.
    pub tdp_watts: f64,
    /// Manufacturing footprint in kg CO₂e.
    pub manufacturing_kg: f64,
}

impl MacProConfig {
    /// Manufacturing footprint.
    #[must_use]
    pub fn manufacturing(&self) -> CarbonMass {
        CarbonMass::from_kg(self.manufacturing_kg)
    }

    /// System TDP.
    #[must_use]
    pub fn tdp(&self) -> Power {
        Power::from_watts(self.tdp_watts)
    }
}

/// Table IV, column "Mac Pro 1": the base configuration.
pub const MAC_PRO_1: MacProConfig = MacProConfig {
    name: "Mac Pro 1",
    cpu_cores: 8,
    threads_per_core: 2,
    dram_gb: 32,
    storage_gb: 256,
    gpu_tflops: 6.2,
    gpu_mem_bw_gbps: 256.0,
    tdp_watts: 310.0,
    manufacturing_kg: 700.0,
};

/// Table IV, column "Mac Pro 2": the data-center-scale configuration with
/// dual AMD Radeon Vega GPUs.
pub const MAC_PRO_2: MacProConfig = MacProConfig {
    name: "Mac Pro 2",
    cpu_cores: 28,
    threads_per_core: 2,
    dram_gb: 1_536,
    storage_gb: 4_096,
    gpu_tflops: 28.4,
    gpu_mem_bw_gbps: 2_048.0,
    tdp_watts: 730.0,
    manufacturing_kg: 1_900.0,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_up_ratios_match_table_iv() {
        assert!((MAC_PRO_2.gpu_tflops / MAC_PRO_1.gpu_tflops - 4.58).abs() < 0.1);
        assert_eq!(
            (MAC_PRO_2.gpu_mem_bw_gbps / MAC_PRO_1.gpu_mem_bw_gbps) as u32,
            8
        );
        assert_eq!(MAC_PRO_2.dram_gb / MAC_PRO_1.dram_gb, 48);
        assert_eq!(MAC_PRO_2.storage_gb / MAC_PRO_1.storage_gb, 16);
    }

    #[test]
    fn manufacturing_carbon_ratio_is_2_7x() {
        let ratio = MAC_PRO_2.manufacturing() / MAC_PRO_1.manufacturing();
        assert!((ratio - 2.71).abs() < 0.1, "paper: 2.6-2.7x, got {ratio}");
    }

    #[test]
    fn tdp_values() {
        assert_eq!(MAC_PRO_1.tdp().as_watts(), 310.0);
        assert_eq!(MAC_PRO_2.tdp().as_watts(), 730.0);
    }
}
