//! TSMC wafer-manufacturing footprint composition (Fig 14).
//!
//! ## Reconstruction anchors
//!
//! * "Energy consumption ... produces over 63% of the emissions from
//!   manufacturing 12-inch wafers at TSMC" (§II).
//! * "nearly 30% of emissions from manufacturing 12-inch wafers are due to
//!   PFCs, chemicals, and gases" (§II).
//! * "a 64× boost in renewable energy reduces the overall carbon output by
//!   roughly 2.7×" (§V, Fig 14).
//! * "next-generation manufacturing in a 3nm fab predicted to consume up to
//!   7.7 billion kilowatt-hours annually"; TSMC's renewable target is 20% of
//!   fab electricity (§II, §V).

use cc_units::Energy;

/// One component of the per-wafer carbon footprint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaferComponent {
    /// Component label as in Fig 14's legend.
    pub label: &'static str,
    /// Share of the baseline per-wafer footprint.
    pub share: f64,
    /// Whether the component is electricity (and thus scales with grid
    /// carbon intensity in the renewable sweep).
    pub is_energy: bool,
}

/// TSMC 12-inch (300 mm) wafer footprint composition at the baseline energy
/// source. Shares sum to 1.
///
/// Energy is 64% (paper: "over 63%"); PFC & diffusive plus chemicals & gases
/// total 29% (paper: "nearly 30%").
pub const TSMC_WAFER: [WaferComponent; 6] = [
    WaferComponent {
        label: "Energy",
        share: 0.64,
        is_energy: true,
    },
    WaferComponent {
        label: "PFC & diffusive emissions",
        share: 0.17,
        is_energy: false,
    },
    WaferComponent {
        label: "Chemicals & gases",
        share: 0.12,
        is_energy: false,
    },
    WaferComponent {
        label: "Wafers",
        share: 0.03,
        is_energy: false,
    },
    WaferComponent {
        label: "Bulk gas",
        share: 0.03,
        is_energy: false,
    },
    WaferComponent {
        label: "Other",
        share: 0.01,
        is_energy: false,
    },
];

/// Absolute baseline footprint of one 300 mm wafer at an advanced node, in
/// kg CO₂e. Industry LCAs place a 300 mm logic wafer in the high hundreds of
/// kg CO₂e; this constant anchors absolute per-die numbers in `cc-fab` and
/// cancels out of every ratio Fig 14 reports.
pub const TSMC_WAFER_BASELINE_KG: f64 = 450.0;

/// Annual electricity demand projected for a 3 nm fab: 7.7 TWh.
#[must_use]
pub fn fab_3nm_annual_energy() -> Energy {
    Energy::from_kwh(7.7e9)
}

/// TSMC's stated renewable-electricity target for its fabs (20%).
pub const TSMC_RENEWABLE_TARGET: f64 = 0.20;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let total: f64 = TSMC_WAFER.iter().map(|c| c.share).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn energy_share_matches_paper() {
        let energy: f64 = TSMC_WAFER
            .iter()
            .filter(|c| c.is_energy)
            .map(|c| c.share)
            .sum();
        assert!(energy > 0.63, "paper: energy is over 63%");
        assert!(energy < 0.66);
    }

    #[test]
    fn pfc_chemicals_near_30_percent() {
        let pfc_chem: f64 = TSMC_WAFER
            .iter()
            .filter(|c| c.label.contains("PFC") || c.label.contains("Chemicals"))
            .map(|c| c.share)
            .sum();
        assert!(
            (pfc_chem - 0.29).abs() < 0.02,
            "paper: nearly 30%, got {pfc_chem}"
        );
    }

    #[test]
    fn renewable_64x_gives_2_7x_reduction() {
        // The headline arithmetic of Fig 14, straight from the shares.
        let energy: f64 = TSMC_WAFER
            .iter()
            .filter(|c| c.is_energy)
            .map(|c| c.share)
            .sum();
        let rest = 1.0 - energy;
        let scaled_total = rest + energy / 64.0;
        let reduction = 1.0 / scaled_total;
        assert!(
            (reduction - 2.7).abs() < 0.1,
            "paper: ~2.7x, got {reduction}"
        );
    }

    #[test]
    fn fab_3nm_energy() {
        assert!((fab_3nm_annual_energy().as_twh() - 7.7).abs() < 1e-9);
    }
}
