//! Product life-cycle assessments for consumer devices.
//!
//! Fifty-five devices from Apple, Google, Huawei and Microsoft, digitized from the
//! product environmental reports the paper aggregates ("more than 30 products
//! from Apple, Google, Huawei, and Microsoft", §III).
//!
//! ## Reconstruction anchors
//!
//! The paper states these values explicitly; the records below reproduce them:
//!
//! * iPhone 3GS capex share 49% (opex 51%) and iPhone 11 capex share 86%
//!   (opex 14%) — Fig 2 pies and Contribution 1.
//! * Manufacturing shares across generations: iPhone 3GS 40% → iPhone XR 75%;
//!   Apple Watch Series 1 60% → Series 5 75%; iPad Gen 2 60% → Gen 7 75%
//!   (Fig 7, Takeaway 4).
//! * Manufacturing footprints on the Fig 8 Pareto plot: iPhone 11 Pro 66 kg,
//!   iPhone X 63 kg, iPhone 11 ≈ 60 kg, Pixel 3a 45 kg.
//! * "the total and manufacturing footprint for an Apple MacBook laptop is
//!   typically 3× that of an iPhone" (Takeaway 3).
//! * Battery-powered devices ≈ 75% manufacturing / ≈ 20% use; personal
//!   assistants ≈ 40% manufacturing; desktops ≈ 50% (Takeaway 2).
//! * Device lifetimes average "three to four years".

use cc_units::{CarbonMass, Ratio, TimeSpan};

/// Device vendor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Vendor {
    /// Apple Inc.
    Apple,
    /// Google LLC.
    Google,
    /// Huawei Technologies.
    Huawei,
    /// Microsoft Corporation.
    Microsoft,
}

impl Vendor {
    /// One-letter tag used on the Fig 8 scatter plot.
    #[must_use]
    pub fn tag(self) -> char {
        match self {
            Self::Apple => 'A',
            Self::Google => 'G',
            Self::Huawei => 'H',
            Self::Microsoft => 'M',
        }
    }

    /// Human-readable vendor name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Apple => "Apple",
            Self::Google => "Google",
            Self::Huawei => "Huawei",
            Self::Microsoft => "Microsoft",
        }
    }
}

impl core::fmt::Display for Vendor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Device category, following Fig 6's grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Tablets (iPads, Surfaces).
    Tablet,
    /// Mobile phones.
    Phone,
    /// Wearables (watches).
    Wearable,
    /// Laptops.
    Laptop,
    /// Smart speakers / personal assistants.
    Speaker,
    /// Desktops without an integrated display.
    Desktop,
    /// Desktops with an integrated display (iMac, Surface Studio).
    DesktopWithDisplay,
    /// Game consoles.
    GameConsole,
}

impl Category {
    /// All categories in Fig 6 order (battery-operated first).
    pub const ALL: [Self; 8] = [
        Self::Tablet,
        Self::Phone,
        Self::Wearable,
        Self::Laptop,
        Self::Speaker,
        Self::Desktop,
        Self::DesktopWithDisplay,
        Self::GameConsole,
    ];

    /// Whether Fig 6 classifies the category as battery-operated (vs
    /// always-connected).
    #[must_use]
    pub fn is_battery_operated(self) -> bool {
        matches!(
            self,
            Self::Tablet | Self::Phone | Self::Wearable | Self::Laptop
        )
    }

    /// Human-readable label, matching Fig 6's axis.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Tablet => "Tablets",
            Self::Phone => "Phones",
            Self::Wearable => "Wearables",
            Self::Laptop => "Laptops",
            Self::Speaker => "Speakers",
            Self::Desktop => "Desktops",
            Self::DesktopWithDisplay => "Desktops w/Display",
            Self::GameConsole => "Game consoles",
        }
    }
}

impl core::fmt::Display for Category {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A product life-cycle assessment record, as published in vendor
/// environmental reports: a total footprint and its split across the four
/// life-cycle phases of Fig 4.
///
/// Phase shares are fractions of the total and sum to 1 (validated by tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProductLca {
    /// Marketing name, e.g. `"iPhone 11"`.
    pub name: &'static str,
    /// Vendor.
    pub vendor: Vendor,
    /// Release year.
    pub year: u16,
    /// Category (Fig 6 grouping).
    pub category: Category,
    /// Total life-cycle footprint in kg CO₂e over the assumed lifetime.
    pub total_kg: f64,
    /// Production/manufacturing share of the total (raw materials, ICs,
    /// packaging, assembly).
    pub production_share: f64,
    /// Transport share of the total.
    pub transport_share: f64,
    /// Use-phase (operational energy) share of the total.
    pub use_share: f64,
    /// End-of-life processing share of the total.
    pub eol_share: f64,
    /// Assumed lifetime in years (vendor LCAs use 3 for phones/watches,
    /// 4 for computers).
    pub lifetime_years: f64,
}

impl ProductLca {
    /// Total life-cycle footprint.
    #[must_use]
    pub fn total(&self) -> CarbonMass {
        CarbonMass::from_kg(self.total_kg)
    }

    /// Production (manufacturing) footprint.
    #[must_use]
    pub fn production(&self) -> CarbonMass {
        self.total() * self.production_share
    }

    /// Transport footprint.
    #[must_use]
    pub fn transport(&self) -> CarbonMass {
        self.total() * self.transport_share
    }

    /// Use-phase (operational) footprint over the lifetime.
    #[must_use]
    pub fn use_phase(&self) -> CarbonMass {
        self.total() * self.use_share
    }

    /// End-of-life footprint.
    #[must_use]
    pub fn end_of_life(&self) -> CarbonMass {
        self.total() * self.eol_share
    }

    /// Capex-related share: production + transport + end-of-life, per the
    /// paper's definition ("capex-related emissions results are from
    /// aggregating production/manufacturing, transport, and end-of-life
    /// processing", Fig 4).
    #[must_use]
    pub fn capex_share(&self) -> Ratio {
        Ratio::from_fraction(self.production_share + self.transport_share + self.eol_share)
    }

    /// Opex-related share: the use phase.
    #[must_use]
    pub fn opex_share(&self) -> Ratio {
        Ratio::from_fraction(self.use_share)
    }

    /// Assumed lifetime.
    #[must_use]
    pub fn lifetime(&self) -> TimeSpan {
        TimeSpan::from_years(self.lifetime_years)
    }

    /// Returns `true` when the phase shares sum to 1 within `1e-9`.
    #[must_use]
    pub fn shares_are_consistent(&self) -> bool {
        let sum = self.production_share + self.transport_share + self.use_share + self.eol_share;
        (sum - 1.0).abs() < 1e-9
            && self.production_share >= 0.0
            && self.transport_share >= 0.0
            && self.use_share >= 0.0
            && self.eol_share >= 0.0
    }
}

/// Helper to keep the table below readable.
#[allow(clippy::too_many_arguments)] // one positional row of the published dataset table
const fn lca(
    name: &'static str,
    vendor: Vendor,
    year: u16,
    category: Category,
    total_kg: f64,
    production_share: f64,
    transport_share: f64,
    use_share: f64,
    eol_share: f64,
    lifetime_years: f64,
) -> ProductLca {
    ProductLca {
        name,
        vendor,
        year,
        category,
        total_kg,
        production_share,
        transport_share,
        use_share,
        eol_share,
        lifetime_years,
    }
}

use Category as C;
use Vendor as V;

/// The full device dataset (40 products).
pub const ALL: [ProductLca; 40] = [
    // ---- Phones: Apple iPhone generations (Fig 7 anchors) ----------------
    lca(
        "iPhone 3GS",
        V::Apple,
        2009,
        C::Phone,
        55.0,
        0.40,
        0.08,
        0.51,
        0.01,
        3.0,
    ),
    lca(
        "iPhone 4",
        V::Apple,
        2010,
        C::Phone,
        45.0,
        0.45,
        0.08,
        0.46,
        0.01,
        3.0,
    ),
    lca(
        "iPhone 4S",
        V::Apple,
        2011,
        C::Phone,
        55.0,
        0.47,
        0.08,
        0.44,
        0.01,
        3.0,
    ),
    lca(
        "iPhone 5S",
        V::Apple,
        2013,
        C::Phone,
        65.0,
        0.55,
        0.07,
        0.37,
        0.01,
        3.0,
    ),
    lca(
        "iPhone 6s",
        V::Apple,
        2015,
        C::Phone,
        54.0,
        0.62,
        0.06,
        0.31,
        0.01,
        3.0,
    ),
    lca(
        "iPhone 7",
        V::Apple,
        2016,
        C::Phone,
        56.0,
        0.67,
        0.06,
        0.26,
        0.01,
        3.0,
    ),
    lca(
        "iPhone X",
        V::Apple,
        2017,
        C::Phone,
        79.0,
        0.797,
        0.05,
        0.143,
        0.01,
        3.0,
    ),
    lca(
        "iPhone XR",
        V::Apple,
        2018,
        C::Phone,
        62.0,
        0.74,
        0.05,
        0.20,
        0.01,
        3.0,
    ),
    lca(
        "iPhone 11",
        V::Apple,
        2019,
        C::Phone,
        75.0,
        0.79,
        0.05,
        0.14,
        0.02,
        3.0,
    ),
    lca(
        "iPhone 11 Pro",
        V::Apple,
        2019,
        C::Phone,
        82.0,
        0.805,
        0.045,
        0.13,
        0.02,
        3.0,
    ),
    lca(
        "iPhone SE (2nd gen)",
        V::Apple,
        2020,
        C::Phone,
        57.0,
        0.76,
        0.05,
        0.17,
        0.02,
        3.0,
    ),
    // ---- Phones: Google Pixels -------------------------------------------
    lca(
        "Pixel 2",
        V::Google,
        2017,
        C::Phone,
        60.0,
        0.70,
        0.06,
        0.23,
        0.01,
        3.0,
    ),
    lca(
        "Pixel 2 XL",
        V::Google,
        2017,
        C::Phone,
        70.0,
        0.71,
        0.06,
        0.22,
        0.01,
        3.0,
    ),
    lca(
        "Pixel 3",
        V::Google,
        2018,
        C::Phone,
        70.0,
        0.71,
        0.06,
        0.22,
        0.01,
        3.0,
    ),
    lca(
        "Pixel 3 XL",
        V::Google,
        2018,
        C::Phone,
        76.0,
        0.72,
        0.06,
        0.21,
        0.01,
        3.0,
    ),
    lca(
        "Pixel 3a",
        V::Google,
        2019,
        C::Phone,
        63.0,
        0.715,
        0.06,
        0.21,
        0.015,
        3.0,
    ),
    lca(
        "Pixel 3a XL",
        V::Google,
        2019,
        C::Phone,
        67.0,
        0.72,
        0.06,
        0.21,
        0.01,
        3.0,
    ),
    // ---- Phones: Huawei ---------------------------------------------------
    lca(
        "Honor 5C",
        V::Huawei,
        2016,
        C::Phone,
        43.0,
        0.70,
        0.05,
        0.24,
        0.01,
        3.0,
    ),
    lca(
        "Honor 8 Lite",
        V::Huawei,
        2017,
        C::Phone,
        46.0,
        0.70,
        0.05,
        0.24,
        0.01,
        3.0,
    ),
    // ---- Tablets: Apple iPad generations (Fig 7 anchors) ------------------
    lca(
        "iPad (2nd gen)",
        V::Apple,
        2012,
        C::Tablet,
        180.0,
        0.60,
        0.07,
        0.32,
        0.01,
        3.0,
    ),
    lca(
        "iPad (3rd gen)",
        V::Apple,
        2012,
        C::Tablet,
        165.0,
        0.62,
        0.07,
        0.30,
        0.01,
        3.0,
    ),
    lca(
        "iPad (5th gen)",
        V::Apple,
        2017,
        C::Tablet,
        125.0,
        0.68,
        0.07,
        0.24,
        0.01,
        3.0,
    ),
    lca(
        "iPad (6th gen)",
        V::Apple,
        2018,
        C::Tablet,
        110.0,
        0.70,
        0.07,
        0.22,
        0.01,
        3.0,
    ),
    lca(
        "iPad (7th gen)",
        V::Apple,
        2019,
        C::Tablet,
        100.0,
        0.75,
        0.06,
        0.18,
        0.01,
        3.0,
    ),
    lca(
        "iPad Air",
        V::Apple,
        2019,
        C::Tablet,
        110.0,
        0.74,
        0.06,
        0.19,
        0.01,
        3.0,
    ),
    lca(
        "iPad mini",
        V::Apple,
        2019,
        C::Tablet,
        90.0,
        0.73,
        0.06,
        0.20,
        0.01,
        3.0,
    ),
    lca(
        "iPad Pro 11\"",
        V::Apple,
        2020,
        C::Tablet,
        130.0,
        0.76,
        0.06,
        0.17,
        0.01,
        3.0,
    ),
    lca(
        "Surface Pro 7",
        V::Microsoft,
        2019,
        C::Tablet,
        140.0,
        0.72,
        0.06,
        0.21,
        0.01,
        3.0,
    ),
    // ---- Wearables: Apple Watch generations (Fig 7 anchors) ---------------
    lca(
        "Apple Watch Series 1",
        V::Apple,
        2016,
        C::Wearable,
        33.0,
        0.60,
        0.08,
        0.31,
        0.01,
        3.0,
    ),
    lca(
        "Apple Watch Series 2",
        V::Apple,
        2016,
        C::Wearable,
        35.0,
        0.63,
        0.08,
        0.28,
        0.01,
        3.0,
    ),
    lca(
        "Apple Watch Series 3",
        V::Apple,
        2017,
        C::Wearable,
        34.0,
        0.67,
        0.08,
        0.24,
        0.01,
        3.0,
    ),
    lca(
        "Apple Watch Series 4",
        V::Apple,
        2018,
        C::Wearable,
        36.0,
        0.71,
        0.07,
        0.21,
        0.01,
        3.0,
    ),
    lca(
        "Apple Watch Series 5",
        V::Apple,
        2019,
        C::Wearable,
        36.0,
        0.75,
        0.07,
        0.17,
        0.01,
        3.0,
    ),
    // ---- Laptops -----------------------------------------------------------
    lca(
        "MacBook Air 13\" Retina",
        V::Apple,
        2020,
        C::Laptop,
        210.0,
        0.74,
        0.05,
        0.19,
        0.02,
        4.0,
    ),
    lca(
        "MacBook Pro 16\"",
        V::Apple,
        2019,
        C::Laptop,
        290.0,
        0.70,
        0.05,
        0.23,
        0.02,
        4.0,
    ),
    lca(
        "Pixelbook Go",
        V::Google,
        2019,
        C::Laptop,
        220.0,
        0.72,
        0.06,
        0.20,
        0.02,
        4.0,
    ),
    // ---- Always-connected --------------------------------------------------
    lca(
        "HomePod",
        V::Apple,
        2018,
        C::Speaker,
        110.0,
        0.42,
        0.07,
        0.50,
        0.01,
        4.0,
    ),
    lca(
        "Google Home",
        V::Google,
        2016,
        C::Speaker,
        70.0,
        0.40,
        0.07,
        0.52,
        0.01,
        4.0,
    ),
    lca(
        "iMac 27\"",
        V::Apple,
        2019,
        C::DesktopWithDisplay,
        580.0,
        0.52,
        0.04,
        0.42,
        0.02,
        4.0,
    ),
    lca(
        "Xbox One X",
        V::Microsoft,
        2017,
        C::GameConsole,
        1_200.0,
        0.30,
        0.05,
        0.64,
        0.01,
        5.0,
    ),
];

/// Extra always-connected devices kept separate from [`ALL`] so the main
/// table matches the paper's "more than 30" product count without double
/// weighting desktops. Used by Fig 6's desktop/speaker averages.
pub const ALWAYS_CONNECTED_EXTRA: [ProductLca; 5] = [
    lca(
        "Google Home Mini",
        V::Google,
        2017,
        C::Speaker,
        35.0,
        0.38,
        0.07,
        0.54,
        0.01,
        4.0,
    ),
    lca(
        "Google Home Hub",
        V::Google,
        2018,
        C::Speaker,
        75.0,
        0.41,
        0.07,
        0.51,
        0.01,
        4.0,
    ),
    lca(
        "Mac mini",
        V::Apple,
        2018,
        C::Desktop,
        250.0,
        0.50,
        0.05,
        0.43,
        0.02,
        4.0,
    ),
    lca(
        "Mac Pro",
        V::Apple,
        2019,
        C::Desktop,
        1_400.0,
        0.50,
        0.03,
        0.45,
        0.02,
        4.0,
    ),
    lca(
        "Xbox One S",
        V::Microsoft,
        2017,
        C::GameConsole,
        900.0,
        0.32,
        0.05,
        0.62,
        0.01,
        5.0,
    ),
];

/// Later-generation devices extending the catalog past the paper's core set
/// (same vendors, same LCA methodology). Kept separate so tests pinned to the
/// paper's exact cohort remain stable.
pub const EXTENDED: [ProductLca; 10] = [
    lca(
        "iPhone 11 Pro Max",
        V::Apple,
        2019,
        C::Phone,
        86.0,
        0.80,
        0.045,
        0.135,
        0.02,
        3.0,
    ),
    lca(
        "Pixel 4",
        V::Google,
        2019,
        C::Phone,
        70.0,
        0.73,
        0.06,
        0.20,
        0.01,
        3.0,
    ),
    lca(
        "Pixel 4 XL",
        V::Google,
        2019,
        C::Phone,
        76.0,
        0.74,
        0.06,
        0.19,
        0.01,
        3.0,
    ),
    lca(
        "iPad Pro 12.9\"",
        V::Apple,
        2020,
        C::Tablet,
        150.0,
        0.76,
        0.06,
        0.17,
        0.01,
        3.0,
    ),
    lca(
        "Surface Go 2",
        V::Microsoft,
        2020,
        C::Tablet,
        100.0,
        0.71,
        0.06,
        0.22,
        0.01,
        3.0,
    ),
    lca(
        "Apple Watch SE",
        V::Apple,
        2020,
        C::Wearable,
        33.0,
        0.76,
        0.07,
        0.16,
        0.01,
        3.0,
    ),
    lca(
        "MacBook Pro 13\"",
        V::Apple,
        2020,
        C::Laptop,
        230.0,
        0.72,
        0.05,
        0.21,
        0.02,
        4.0,
    ),
    lca(
        "Surface Laptop 3",
        V::Microsoft,
        2019,
        C::Laptop,
        250.0,
        0.70,
        0.06,
        0.22,
        0.02,
        4.0,
    ),
    lca(
        "Google Nest Mini",
        V::Google,
        2019,
        C::Speaker,
        32.0,
        0.39,
        0.07,
        0.53,
        0.01,
        4.0,
    ),
    lca(
        "Surface Studio 2",
        V::Microsoft,
        2018,
        C::DesktopWithDisplay,
        700.0,
        0.50,
        0.04,
        0.44,
        0.02,
        4.0,
    ),
];

/// Iterates over every record in the dataset ([`ALL`],
/// [`ALWAYS_CONNECTED_EXTRA`] and [`EXTENDED`]).
pub fn iter() -> impl Iterator<Item = &'static ProductLca> {
    ALL.iter()
        .chain(ALWAYS_CONNECTED_EXTRA.iter())
        .chain(EXTENDED.iter())
}

/// Looks a device up by exact name.
///
/// ```
/// let phone = cc_data::devices::find("iPhone 11").unwrap();
/// assert!((phone.capex_share().as_percent() - 86.0).abs() < 0.5);
/// ```
#[must_use]
pub fn find(name: &str) -> Option<&'static ProductLca> {
    iter().find(|d| d.name == name)
}

/// All devices in a category.
pub fn in_category(category: Category) -> impl Iterator<Item = &'static ProductLca> {
    iter().filter(move |d| d.category == category)
}

/// All devices released in or before `year` (used for the Fig 8 Pareto
/// frontier cohorts).
pub fn released_by(year: u16) -> impl Iterator<Item = &'static ProductLca> {
    iter().filter(move |d| d.year <= year)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_shares_sum_to_one() {
        for d in iter() {
            assert!(
                d.shares_are_consistent(),
                "{} shares do not sum to 1",
                d.name
            );
        }
    }

    #[test]
    fn dataset_is_larger_than_30_products() {
        assert!(iter().count() > 30, "paper analyzes >30 products");
        assert_eq!(
            iter().count(),
            ALL.len() + ALWAYS_CONNECTED_EXTRA.len() + EXTENDED.len()
        );
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = iter().map(|d| d.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn iphone_pie_anchors() {
        // Fig 2 / Contribution 1: capex share 49% -> 86%.
        let iphone3gs = find("iPhone 3GS").unwrap();
        assert!((iphone3gs.capex_share().as_percent() - 49.0).abs() < 0.5);
        assert!((iphone3gs.opex_share().as_percent() - 51.0).abs() < 0.5);
        let iphone11 = find("iPhone 11").unwrap();
        assert!((iphone11.capex_share().as_percent() - 86.0).abs() < 0.5);
        assert!((iphone11.opex_share().as_percent() - 14.0).abs() < 0.5);
    }

    #[test]
    fn fig7_manufacturing_share_anchors() {
        assert!((find("iPhone 3GS").unwrap().production_share - 0.40).abs() < 0.01);
        assert!((find("iPhone XR").unwrap().production_share - 0.75).abs() < 0.015);
        assert!((find("Apple Watch Series 1").unwrap().production_share - 0.60).abs() < 0.01);
        assert!((find("Apple Watch Series 5").unwrap().production_share - 0.75).abs() < 0.01);
        assert!((find("iPad (2nd gen)").unwrap().production_share - 0.60).abs() < 0.01);
        assert!((find("iPad (7th gen)").unwrap().production_share - 0.75).abs() < 0.01);
    }

    #[test]
    fn fig8_manufacturing_footprint_anchors() {
        let pro = find("iPhone 11 Pro").unwrap();
        assert!((pro.production().as_kg() - 66.0).abs() < 0.5);
        let x = find("iPhone X").unwrap();
        assert!((x.production().as_kg() - 63.0).abs() < 0.5);
        let p3a = find("Pixel 3a").unwrap();
        assert!((p3a.production().as_kg() - 45.0).abs() < 0.5);
        let i11 = find("iPhone 11").unwrap();
        assert!((i11.production().as_kg() - 60.0).abs() < 1.0);
    }

    #[test]
    fn macbook_is_roughly_3x_iphone() {
        // Takeaway 3.
        let mac = find("MacBook Air 13\" Retina").unwrap();
        let iphone = find("iPhone 11").unwrap();
        let total_ratio = mac.total() / iphone.total();
        let mfg_ratio = mac.production() / iphone.production();
        assert!(
            total_ratio > 2.3 && total_ratio < 3.6,
            "total ratio {total_ratio}"
        );
        assert!(mfg_ratio > 2.3 && mfg_ratio < 3.6, "mfg ratio {mfg_ratio}");
    }

    #[test]
    fn battery_operated_classification() {
        assert!(Category::Phone.is_battery_operated());
        assert!(Category::Wearable.is_battery_operated());
        assert!(!Category::Speaker.is_battery_operated());
        assert!(!Category::GameConsole.is_battery_operated());
    }

    #[test]
    fn battery_devices_average_75_percent_manufacturing() {
        // Takeaway 2: "manufacturing (capex) accounts for roughly 75% of the
        // emissions for battery-powered devices" released after 2017.
        let recent: Vec<_> = iter()
            .filter(|d| d.category.is_battery_operated() && d.year >= 2017)
            .collect();
        let avg: f64 = recent.iter().map(|d| d.production_share).sum::<f64>() / recent.len() as f64;
        assert!((avg - 0.73).abs() < 0.04, "battery mfg avg {avg}");
    }

    #[test]
    fn always_connected_use_dominates() {
        for d in iter().filter(|d| !d.category.is_battery_operated()) {
            assert!(
                d.use_share > 0.40,
                "{}: always-connected devices are use-dominated",
                d.name
            );
        }
    }

    #[test]
    fn speaker_and_desktop_manufacturing_anchors() {
        // "hardware manufacturing accounts for 40% of carbon output from
        // personal assistants (e.g., Google Home) and 50% from desktops".
        let home = find("Google Home").unwrap();
        assert!((home.production_share - 0.40).abs() < 0.01);
        let imac = find("iMac 27\"").unwrap();
        assert!((imac.production_share - 0.50).abs() < 0.03);
    }

    #[test]
    fn pixel3_soc_half_production_anchor() {
        // Fig 10 assumes the SoC accounts for half of the Pixel 3's
        // production emissions, i.e. ~25 kg CO2e.
        let p3 = find("Pixel 3").unwrap();
        let soc = p3.production() * 0.5;
        assert!((soc.as_kg() - 24.85).abs() < 0.5);
    }

    #[test]
    fn lookup_and_filters() {
        assert!(find("Nokia 3310").is_none());
        assert!(in_category(Category::Phone).count() >= 10);
        assert!(released_by(2017).count() < iter().count());
        assert!(released_by(2009).count() >= 1);
    }

    #[test]
    fn vendor_tags() {
        assert_eq!(Vendor::Apple.tag(), 'A');
        assert_eq!(Vendor::Google.tag(), 'G');
        assert_eq!(Vendor::Huawei.tag(), 'H');
        assert_eq!(Vendor::Microsoft.to_string(), "Microsoft");
    }
}
