//! Table III: global carbon efficiency of energy production.
//!
//! Average grid carbon intensity by geography with the dominant energy
//! source, as reported by the paper (sources: Henderson et al.,
//! electricitymap, CO₂ Baseline Database for the Indian Power Sector).

use cc_units::CarbonIntensity;

/// A geographic electricity grid from Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Region {
    /// World average (301 g CO₂e/kWh).
    World,
    /// India (725 g CO₂e/kWh, coal/gas dominated).
    India,
    /// Australia (597 g CO₂e/kWh, coal dominated).
    Australia,
    /// Taiwan (583 g CO₂e/kWh, coal/gas dominated) — where TSMC's fabs are.
    Taiwan,
    /// Singapore (495 g CO₂e/kWh, gas dominated).
    Singapore,
    /// United States (380 g CO₂e/kWh, coal/gas) — the paper's baseline grid.
    UnitedStates,
    /// Europe (295 g CO₂e/kWh, mixed).
    Europe,
    /// Brazil (82 g CO₂e/kWh, wind/hydropower dominated).
    Brazil,
    /// Iceland (28 g CO₂e/kWh, hydropower dominated).
    Iceland,
}

impl Region {
    /// All regions in Table III order (dirtiest first after the world
    /// average).
    pub const ALL: [Self; 9] = [
        Self::World,
        Self::India,
        Self::Australia,
        Self::Taiwan,
        Self::Singapore,
        Self::UnitedStates,
        Self::Europe,
        Self::Brazil,
        Self::Iceland,
    ];

    /// Average grid carbon intensity (Table III, column 2).
    #[must_use]
    pub fn carbon_intensity(self) -> CarbonIntensity {
        let g = match self {
            Self::World => 301.0,
            Self::India => 725.0,
            Self::Australia => 597.0,
            Self::Taiwan => 583.0,
            Self::Singapore => 495.0,
            Self::UnitedStates => 380.0,
            Self::Europe => 295.0,
            Self::Brazil => 82.0,
            Self::Iceland => 28.0,
        };
        CarbonIntensity::from_g_per_kwh(g)
    }

    /// Dominant energy source as the table states it (the world and Europe
    /// rows have none).
    #[must_use]
    pub fn dominant_source(self) -> Option<&'static str> {
        match self {
            Self::World | Self::Europe => None,
            Self::India => Some("Coal/gas"),
            Self::Australia => Some("Coal"),
            Self::Taiwan => Some("Coal/gas"),
            Self::Singapore => Some("Gas"),
            Self::UnitedStates => Some("Coal/gas"),
            Self::Brazil => Some("Wind/hydropower"),
            Self::Iceland => Some("Hydropower"),
        }
    }

    /// Human-readable name, matching the Table III row label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::World => "World",
            Self::India => "India",
            Self::Australia => "Australia",
            Self::Taiwan => "Taiwan",
            Self::Singapore => "Singapore",
            Self::UnitedStates => "United States",
            Self::Europe => "Europe",
            Self::Brazil => "Brazil",
            Self::Iceland => "Iceland",
        }
    }
}

impl core::fmt::Display for Region {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn us_is_paper_baseline() {
        assert_eq!(
            Region::UnitedStates.carbon_intensity().as_g_per_kwh(),
            380.0
        );
    }

    #[test]
    fn hydro_regions_are_cleanest() {
        let cleanest = Region::ALL
            .iter()
            .min_by(|a, b| {
                a.carbon_intensity()
                    .partial_cmp(&b.carbon_intensity())
                    .unwrap()
            })
            .copied()
            .unwrap();
        assert_eq!(cleanest, Region::Iceland);
    }

    #[test]
    fn india_vs_iceland_spread() {
        // The geographic spread spans ~26×, motivating the paper's point that
        // Scope 2 "depend[s] on the geographic location and energy grid".
        let spread = Region::India.carbon_intensity() / Region::Iceland.carbon_intensity();
        assert!(spread > 25.0 && spread < 27.0);
    }

    #[test]
    fn dominant_sources() {
        assert_eq!(Region::Australia.dominant_source(), Some("Coal"));
        assert_eq!(Region::World.dominant_source(), None);
        assert_eq!(Region::Brazil.dominant_source(), Some("Wind/hydropower"));
    }
}
