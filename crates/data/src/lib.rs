//! # cc-data
//!
//! Curated datasets digitized from *Chasing Carbon* (HPCA 2021) and the
//! industry sustainability reports it analyzes.
//!
//! The paper's raw inputs are publicly reported but practically awkward to
//! obtain (archived PDF product environmental reports, corporate GHG filings).
//! This crate substitutes **typed, documented constants**: every number the
//! paper states explicitly is recorded verbatim, and every chart shown without
//! exact values is reconstructed to satisfy all constraints stated in the
//! paper's text (each module documents its anchors).
//!
//! Modules:
//!
//! * [`energy_sources`] — Table II: carbon intensity and energy-payback time
//!   of generation technologies.
//! * [`grids`] — Table III: geographic grid carbon intensity.
//! * [`devices`] — product life-cycle assessments for 40 consumer devices
//!   (Apple, Google, Huawei, Microsoft), the basis of Figs 2, 6, 7, 8.
//! * [`corporate`] — corporate GHG inventories: Apple FY2019 breakdown
//!   (Fig 5), Facebook 2014–2019 and Google 2013–2018 scope series (Fig 11),
//!   Facebook's 2019 Scope 3 categories (Fig 12), Intel/AMD product life-cycle
//!   shares (Fig 13).
//! * [`fab`] — TSMC wafer-manufacturing footprint composition (Fig 14).
//! * [`ict`] — global ICT energy projections 2010–2030 (Fig 1).
//! * [`ai_models`] — descriptors of the CNN workloads measured in Figs 9–10.
//! * [`phone_perf`] — MobileNet v1 throughput points for Fig 8.
//! * [`mac_pro`] — the two Mac Pro configurations of Table IV.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ai_models;
pub mod corporate;
pub mod devices;
pub mod energy_sources;
pub mod fab;
pub mod grids;
pub mod ict;
pub mod mac_pro;
pub mod phone_perf;

/// The average US grid intensity the paper assumes for its Fig 10 break-even
/// analysis: 380 g CO₂e per kWh (citing Henderson et al.).
pub const US_GRID_G_PER_KWH: f64 = 380.0;

/// Returns the paper's assumed US average grid intensity as a typed quantity.
///
/// ```
/// let g = cc_data::us_grid_intensity();
/// assert_eq!(g.as_g_per_kwh(), 380.0);
/// ```
#[must_use]
pub fn us_grid_intensity() -> cc_units::CarbonIntensity {
    cc_units::CarbonIntensity::from_g_per_kwh(US_GRID_G_PER_KWH)
}
