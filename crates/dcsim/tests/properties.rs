//! Property-based tests for the data-center simulator.

use cc_dcsim::{
    CarbonAwareScheduler, DayProfile, Facility, MultiSiteScheduler, ServerConfig, SitePlan,
};
use cc_units::{CarbonMass, Energy, IntensityTrace};
use proptest::prelude::*;

/// Builds a statically feasible fleet from raw per-site parameters:
/// `(base MWh/h, deferrable MWh/day, burst headroom factor, trace kind)`.
fn fleet_from(params: &[(f64, f64, f64, u8)]) -> Vec<SitePlan> {
    params
        .iter()
        .enumerate()
        .map(|(i, &(base, deferrable, burst, kind))| {
            let trace = match kind % 3 {
                0 => IntensityTrace::flat(24.0 + base * 10.0),
                1 => IntensityTrace::solar_day(380.0, 120.0),
                _ => IntensityTrace::solar_day(490.0, 38.0),
            };
            // Capacity covers the uniform split plus a burst margin, so the
            // static baseline is always feasible.
            let capacity = base + deferrable / 24.0 * (1.0 + burst);
            SitePlan::flat(format!("site{i}"), trace, base, deferrable, capacity)
        })
        .collect()
}

proptest! {
    /// Energy and fleet size are monotone non-decreasing for growth >= 1.
    #[test]
    fn growth_implies_monotone_energy(
        initial in 100u64..100_000,
        growth in 1.0..1.6f64,
        years in 2usize..12,
    ) {
        let mut facility = Facility::builder("prop", 2010, ServerConfig::web())
            .initial_servers(initial)
            .server_growth(growth)
            .build();
        let sim = facility.simulate(years);
        prop_assert_eq!(sim.len(), years);
        for pair in sim.windows(2) {
            prop_assert!(pair[1].energy >= pair[0].energy);
            prop_assert!(pair[1].servers >= pair[0].servers);
        }
    }

    /// Market carbon never exceeds location carbon for green-source ramps.
    #[test]
    fn market_bounded_by_location(
        coverage in proptest::collection::vec(0.0..=1.0f64, 1..8),
        growth in 0.8..1.5f64,
    ) {
        let mut facility = Facility::builder("prop", 2010, ServerConfig::storage())
            .initial_servers(10_000)
            .server_growth(growth)
            .renewable_ramp(coverage.clone())
            .build();
        for year in facility.simulate(coverage.len()) {
            prop_assert!(year.market_carbon <= year.location_carbon + CarbonMass::from_grams(1.0));
            prop_assert!(year.capex_carbon >= CarbonMass::ZERO);
        }
    }

    /// Higher PUE means proportionally higher energy, with carbon following.
    #[test]
    fn pue_scales_operational_terms(pue in 1.0..2.0f64) {
        let run = |p: f64| {
            Facility::builder("prop", 2010, ServerConfig::web())
                .initial_servers(1_000)
                .pue(p)
                .build()
                .simulate(1)
                .pop()
                .unwrap()
        };
        let base = run(1.0);
        let scaled = run(pue);
        let e_ratio = scaled.energy / base.energy;
        prop_assert!((e_ratio - pue).abs() < 1e-9);
        let c_ratio = scaled.location_carbon / base.location_carbon;
        prop_assert!((c_ratio - pue).abs() < 1e-9);
        // Capex is untouched by PUE.
        prop_assert_eq!(scaled.capex_carbon, base.capex_carbon);
    }

    /// The carbon-aware schedule always places exactly the requested batch
    /// energy and never exceeds capacity.
    #[test]
    fn schedule_conserves_energy(batch in 0.5..150.0f64, base in 0.1..4.0f64) {
        let capacity = base + batch / 20.0 + 1.0;
        let profile = DayProfile::solar_grid(base, batch, capacity);
        let schedule = CarbonAwareScheduler::carbon_aware(&profile);
        let placed: cc_units::Energy = schedule.batch_per_hour.iter().copied().sum();
        prop_assert!((placed / profile.batch_energy - 1.0).abs() < 1e-9);
        for h in 0..24 {
            let used = profile.base_load[h] + schedule.batch_per_hour[h];
            prop_assert!(used <= profile.hourly_capacity + cc_units::Energy::from_joules(1.0));
        }
    }

    /// Fleet placement conserves deferrable energy and never exceeds any
    /// site's hourly capacity, for both the baseline and the aware plan.
    #[test]
    fn fleet_placement_conserves_energy_within_capacity(
        params in proptest::collection::vec(
            (0.1..4.0f64, 0.0..30.0f64, 0.2..3.0f64, 0u8..3),
            1..5,
        ),
        overhead in 0.0..0.3f64,
    ) {
        let sites = fleet_from(&params);
        let sched = MultiSiteScheduler::with_overhead(overhead);
        let budget: Energy = sites.iter().map(|s| s.deferrable).sum();
        for schedule in [sched.static_placement(&sites), sched.carbon_aware(&sites)] {
            let placed: Energy = schedule.placement.iter().flatten().copied().sum();
            prop_assert!((placed - budget).abs() <= Energy::from_joules(1.0) + budget * 1e-9);
            for (s, site) in sites.iter().enumerate() {
                for h in 0..24 {
                    let used = site.base_load[h] + schedule.placement[s][h];
                    prop_assert!(used <= site.hourly_capacity + Energy::from_joules(1.0));
                }
            }
        }
    }

    /// Carbon-aware placement never loses to the static baseline.
    #[test]
    fn avoided_carbon_is_never_negative(
        params in proptest::collection::vec(
            (0.1..4.0f64, 0.0..30.0f64, 0.2..3.0f64, 0u8..3),
            1..5,
        ),
        overhead in 0.0..0.5f64,
    ) {
        let sites = fleet_from(&params);
        let sched = MultiSiteScheduler::with_overhead(overhead);
        prop_assert!(sched.avoided_carbon(&sites) >= CarbonMass::ZERO);
    }

    /// With nothing deferrable, carbon-aware scheduling IS static placement.
    #[test]
    fn zero_deferrable_fleet_matches_static_placement(
        params in proptest::collection::vec(
            (0.1..4.0f64, 0.2..3.0f64, 0u8..3),
            1..5,
        ),
    ) {
        let zeroed: Vec<(f64, f64, f64, u8)> =
            params.iter().map(|&(base, burst, kind)| (base, 0.0, burst, kind)).collect();
        let sites = fleet_from(&zeroed);
        let sched = MultiSiteScheduler::default();
        prop_assert_eq!(sched.carbon_aware(&sites), sched.static_placement(&sites));
        prop_assert_eq!(sched.avoided_carbon(&sites), CarbonMass::ZERO);
    }
}
