//! The Prineville scenario: Facebook's Oregon data center, 2013–2019
//! (Fig 2, left).
//!
//! "Between 2013 and 2019, as the facility expanded, the energy consumption
//! monotonically increased. On the other hand, the carbon emissions started
//! decreasing in 2017. By 2019, the data center's operational carbon output
//! reached nearly zero."

use crate::facility::{Facility, FacilityYear};
use crate::server::ServerConfig;
use cc_units::CarbonMass;

/// Builds the Prineville-like facility: a growing fleet on the US grid with
/// a renewable ramp that reaches 100% coverage in 2019.
#[must_use]
pub fn facility() -> Facility {
    Facility::builder("Prineville", 2013, ServerConfig::web())
        .initial_servers(60_000)
        .server_growth(1.28)
        .pue(1.10) // Facebook's Prineville is a flagship-efficiency site.
        .construction(CarbonMass::from_kt(150.0))
        // Renewable coverage per year 2013..2019: procurement starts around
        // 2013, accelerates after 2016, reaches ~100% by 2019.
        .renewable_ramp(vec![0.05, 0.10, 0.20, 0.35, 0.60, 0.85, 1.0])
        .build()
}

/// Runs the 2013–2019 simulation.
#[must_use]
pub fn simulate() -> Vec<FacilityYear> {
    facility().simulate(7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_rises_monotonically() {
        let years = simulate();
        assert_eq!(years.first().unwrap().year, 2013);
        assert_eq!(years.last().unwrap().year, 2019);
        for pair in years.windows(2) {
            assert!(pair[1].energy > pair[0].energy);
        }
    }

    #[test]
    fn operational_carbon_peaks_then_falls_to_near_zero() {
        let years = simulate();
        let peak_idx = years
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.market_carbon.partial_cmp(&b.1.market_carbon).unwrap())
            .unwrap()
            .0;
        let peak_year = years[peak_idx].year;
        assert!((2015..=2017).contains(&peak_year), "peak at {peak_year}");
        // 2019 operational carbon is "nearly zero": <10% of the peak.
        let last = years.last().unwrap();
        assert!(
            last.market_carbon / years[peak_idx].market_carbon < 0.10,
            "2019 carbon should be near zero"
        );
    }

    #[test]
    fn capex_dominates_by_2019() {
        let last = simulate().pop().unwrap();
        let capex_share = last.capex_carbon / (last.capex_carbon + last.market_carbon);
        assert!(capex_share > 0.75, "capex share {capex_share}");
    }
}
