//! Mixed-SKU fleet composition.
//!
//! The paper's facility analysis fixes a single web-server SKU, but its
//! central question — when does embodied carbon pay for itself — changes
//! qualitatively with fleet composition: storage- and AI-heavy fleets shift
//! the opex/capex balance per server. A [`FleetMix`] is a weighted set of
//! [`ServerConfig`]s (weights summing to 1) that the [`crate::Facility`]
//! model deploys in proportion every simulated year, reusing the
//! [`SkuCapability`]/[`FleetSlice`] types the heterogeneity model provisions
//! with. A pure mix reproduces the single-SKU arithmetic exactly, so the
//! paper-default web fleet replays the disclosed Prineville trajectory bit
//! for bit.

use crate::heterogeneity::{FleetSlice, SkuCapability};
use crate::server::ServerConfig;
use cc_units::{CarbonMass, Power};

/// A weighted composition of server SKUs deployed in fixed proportion.
///
/// ```
/// use cc_dcsim::{FleetMix, ServerConfig};
///
/// let mix = FleetMix::weighted(vec![
///     (ServerConfig::web(), 0.7),
///     (ServerConfig::ai_training(), 0.3),
/// ]);
/// let pure = FleetMix::pure(ServerConfig::web());
/// assert!(mix.average_power() > pure.average_power());
/// assert!(mix.is_mixed() && !pure.is_mixed());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FleetMix {
    slices: Vec<(SkuCapability, f64)>,
}

impl FleetMix {
    /// A single-SKU fleet (weight 1). The arithmetic of a pure mix is
    /// bit-identical to using the SKU directly.
    #[must_use]
    pub fn pure(sku: ServerConfig) -> Self {
        Self {
            slices: vec![(SkuCapability::of(sku), 1.0)],
        }
    }

    /// A weighted composition.
    ///
    /// # Panics
    ///
    /// Panics when `parts` is empty, a weight is negative or non-finite, or
    /// the weights do not sum to 1 (within 1e-6) — the scenario layer
    /// validates user input before a mix is ever built, so a violation here
    /// is a programming error.
    #[must_use]
    pub fn weighted(parts: Vec<(ServerConfig, f64)>) -> Self {
        assert!(!parts.is_empty(), "a fleet mix needs at least one SKU");
        assert!(
            parts.iter().all(|(_, w)| w.is_finite() && *w >= 0.0),
            "mix weights must be finite and non-negative"
        );
        let sum: f64 = parts.iter().map(|(_, w)| w).sum();
        assert!(
            (sum - 1.0).abs() <= 1e-6,
            "mix weights must sum to 1, got {sum}"
        );
        Self {
            slices: parts
                .into_iter()
                .map(|(sku, w)| (SkuCapability::of(sku), w))
                .collect(),
        }
    }

    /// The weighted SKUs, in composition order.
    #[must_use]
    pub fn slices(&self) -> &[(SkuCapability, f64)] {
        &self.slices
    }

    /// Whether the composition holds more than one SKU.
    #[must_use]
    pub fn is_mixed(&self) -> bool {
        self.slices.len() > 1
    }

    /// Composition-weighted average IT power per server.
    #[must_use]
    pub fn average_power(&self) -> Power {
        self.slices.iter().fold(Power::ZERO, |acc, (cap, w)| {
            acc + cap.sku.average_power() * *w
        })
    }

    /// Composition-weighted embodied carbon per server.
    #[must_use]
    pub fn embodied_per_server(&self) -> CarbonMass {
        self.slices.iter().fold(CarbonMass::ZERO, |acc, (cap, w)| {
            acc + cap.sku.embodied() * *w
        })
    }

    /// Splits `total_servers` into per-SKU [`FleetSlice`]s by weight — the
    /// same slice type the heterogeneity model provisions, so per-slice
    /// energy/carbon math is shared.
    #[must_use]
    pub fn provision(&self, total_servers: f64) -> Vec<FleetSlice> {
        self.slices
            .iter()
            .map(|(cap, w)| FleetSlice {
                capability: cap.clone(),
                servers: total_servers * w,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_mix_matches_the_sku_exactly() {
        let web = ServerConfig::web();
        let mix = FleetMix::pure(web.clone());
        // Bit-for-bit: multiplying by the 1.0 weight must not perturb the
        // single-SKU arithmetic the Prineville replay depends on.
        assert_eq!(mix.average_power(), web.average_power());
        assert_eq!(mix.embodied_per_server(), web.embodied());
        assert!(!mix.is_mixed());
    }

    #[test]
    fn weighted_mix_interpolates_power_and_embodied() {
        let mix = FleetMix::weighted(vec![
            (ServerConfig::web(), 0.5),
            (ServerConfig::ai_training(), 0.5),
        ]);
        let mid_w = 0.5 * (250.0 + 1500.0);
        let mid_kg = 0.5 * (1_100.0 + 4_500.0);
        assert!((mix.average_power().as_watts() - mid_w).abs() < 1e-9);
        assert!((mix.embodied_per_server().as_kg() - mid_kg).abs() < 1e-9);
    }

    #[test]
    fn provisioning_splits_servers_by_weight() {
        let mix = FleetMix::weighted(vec![
            (ServerConfig::web(), 0.75),
            (ServerConfig::storage(), 0.25),
        ]);
        let slices = mix.provision(10_000.0);
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[0].servers, 7_500.0);
        assert_eq!(slices[1].servers, 2_500.0);
        assert_eq!(slices[1].capability.sku.name, "storage");
    }

    #[test]
    fn zero_weight_entries_are_inert() {
        let mix = FleetMix::weighted(vec![
            (ServerConfig::web(), 1.0),
            (ServerConfig::ai_training(), 0.0),
        ]);
        assert_eq!(mix.average_power(), ServerConfig::web().average_power());
        assert!(
            mix.is_mixed(),
            "a zero-weight slice still appears in breakdowns"
        );
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_weights_not_summing_to_one() {
        let _ = FleetMix::weighted(vec![(ServerConfig::web(), 0.5)]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_weights() {
        let _ = FleetMix::weighted(vec![
            (ServerConfig::web(), 1.5),
            (ServerConfig::ai_training(), -0.5),
        ]);
    }
}
