//! Fleet heterogeneity: specialized hardware vs general-purpose fleets.
//!
//! Section VI: "Our work enables systems researchers to consider how
//! heterogeneity can reduce carbon footprint by reducing overall hardware
//! resources in the data center." The model here serves a fixed workload
//! (abstract "serving units") with either a homogeneous general-purpose fleet
//! or a mix that includes accelerators, and compares yearly opex + amortized
//! capex carbon.

use crate::server::ServerConfig;
use cc_units::{CarbonIntensity, CarbonMass, Energy, TimeSpan};

/// A server SKU annotated with how many workload units one box serves.
#[derive(Debug, Clone, PartialEq)]
pub struct SkuCapability {
    /// The hardware.
    pub sku: ServerConfig,
    /// Serving capacity in abstract workload units per server.
    pub units_per_server: f64,
}

impl SkuCapability {
    /// Wraps a plain catalog SKU at 1 workload unit per server — the form
    /// [`crate::FleetMix`] composes facility fleets from.
    #[must_use]
    pub fn of(sku: ServerConfig) -> Self {
        Self {
            sku,
            units_per_server: 1.0,
        }
    }

    /// A general-purpose CPU server: 1 unit each.
    #[must_use]
    pub fn general_purpose() -> Self {
        Self::of(ServerConfig::web())
    }

    /// An inference accelerator: ~10 units each at 4× the power and ~3× the
    /// embodied carbon (the specialization bargain).
    #[must_use]
    pub fn accelerator() -> Self {
        Self {
            sku: ServerConfig {
                name: "accelerator".into(),
                average_power_w: 1_000.0,
                embodied_kg: 3_300.0,
                lifetime_years: 3.0,
            },
            units_per_server: 10.0,
        }
    }
}

/// A provisioned fleet slice: a SKU and a server count.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSlice {
    /// The SKU with its capability.
    pub capability: SkuCapability,
    /// Provisioned servers.
    pub servers: f64,
}

impl FleetSlice {
    /// IT + overhead energy this slice consumes in one year at the given
    /// PUE. Shared by [`provision`] and the facility simulation, so the two
    /// models price a slice identically.
    #[must_use]
    pub fn annual_energy(&self, pue: f64) -> Energy {
        self.capability.sku.average_power() * self.servers * TimeSpan::from_years(1.0) * pue
    }

    /// Yearly carbon of this slice on `grid`: operational energy plus
    /// lifetime-amortized embodied carbon.
    #[must_use]
    pub fn yearly_carbon(&self, grid: CarbonIntensity, pue: f64) -> FleetCarbon {
        FleetCarbon {
            opex_per_year: self.annual_energy(pue) * grid,
            capex_per_year: self.capability.sku.embodied_per_year() * self.servers,
        }
    }
}

/// Yearly carbon cost of a fleet: operational plus amortized embodied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetCarbon {
    /// Operational (energy) carbon per year.
    pub opex_per_year: CarbonMass,
    /// Amortized embodied carbon per year.
    pub capex_per_year: CarbonMass,
}

impl FleetCarbon {
    /// Total yearly carbon.
    #[must_use]
    pub fn total(&self) -> CarbonMass {
        self.opex_per_year + self.capex_per_year
    }
}

/// Provisions a homogeneous fleet of `capability` to serve `demand_units`,
/// then prices its yearly carbon on `grid` at the given PUE.
///
/// # Panics
///
/// Panics when demand is negative or PUE < 1.
#[must_use]
pub fn provision(
    capability: &SkuCapability,
    demand_units: f64,
    grid: CarbonIntensity,
    pue: f64,
) -> (FleetSlice, FleetCarbon) {
    assert!(demand_units >= 0.0, "demand must be non-negative");
    assert!(pue >= 1.0, "PUE is a multiplier >= 1");
    let slice = FleetSlice {
        capability: capability.clone(),
        servers: (demand_units / capability.units_per_server).ceil(),
    };
    let carbon = slice.yearly_carbon(grid, pue);
    (slice, carbon)
}

/// Compares a general-purpose fleet against an accelerator fleet for the same
/// demand; returns `(general, specialized)` yearly carbon.
#[must_use]
pub fn specialization_comparison(
    demand_units: f64,
    grid: CarbonIntensity,
    pue: f64,
) -> (FleetCarbon, FleetCarbon) {
    let (_, general) = provision(&SkuCapability::general_purpose(), demand_units, grid, pue);
    let (_, special) = provision(&SkuCapability::accelerator(), demand_units, grid, pue);
    (general, special)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us() -> CarbonIntensity {
        CarbonIntensity::from_g_per_kwh(380.0)
    }

    #[test]
    fn provisioning_rounds_up() {
        let (slice, _) = provision(&SkuCapability::accelerator(), 95.0, us(), 1.1);
        assert_eq!(slice.servers, 10.0);
        let (slice, _) = provision(&SkuCapability::accelerator(), 101.0, us(), 1.1);
        assert_eq!(slice.servers, 11.0);
    }

    #[test]
    fn specialization_wins_at_scale() {
        // 10,000 units: 10,000 CPU boxes vs 1,000 accelerators.
        let (general, special) = specialization_comparison(10_000.0, us(), 1.1);
        assert!(special.opex_per_year < general.opex_per_year * 0.5);
        assert!(special.capex_per_year < general.capex_per_year * 0.5);
        assert!(special.total() < general.total() * 0.5);
    }

    #[test]
    fn specialization_advantage_shrinks_on_green_grids() {
        // On a near-zero grid the opex advantage vanishes; only the embodied
        // (capex) advantage remains — the paper's point that renewable energy
        // refocuses optimization on manufacturing.
        let wind = CarbonIntensity::from_g_per_kwh(11.0);
        let (general, special) = specialization_comparison(10_000.0, wind, 1.1);
        let advantage = general.total() / special.total();
        let (general_us, special_us) = specialization_comparison(10_000.0, us(), 1.1);
        let advantage_us = general_us.total() / special_us.total();
        // Still a win, but the capex ratio (1100*10 / 3300/3yr...) dominates.
        assert!(advantage > 1.0);
        // On wind, capex dominates both fleets' totals.
        assert!(special.capex_per_year > special.opex_per_year);
        assert!(general.capex_per_year > general.opex_per_year);
        // Sanity: both advantages are in the same ballpark (embodied-driven).
        assert!(advantage / advantage_us < 1.5 && advantage_us / advantage < 1.5);
    }

    #[test]
    fn tiny_demand_pays_a_granularity_penalty() {
        // 1 unit of demand still provisions a whole accelerator.
        let (general, special) = specialization_comparison(1.0, us(), 1.1);
        assert!(special.total() > general.total());
    }

    #[test]
    #[should_panic(expected = "demand")]
    fn rejects_negative_demand() {
        let _ = provision(&SkuCapability::general_purpose(), -1.0, us(), 1.1);
    }
}
