//! # cc-dcsim
//!
//! A warehouse-scale data-center simulator: server fleets with PUE overhead,
//! year-by-year energy demand, renewable (PPA) procurement, construction and
//! hardware embodied carbon, the Prineville-like scenario behind Fig 2
//! (left), and a carbon-aware batch scheduler implementing the Section VI
//! research direction.
//!
//! * [`facility`] — the scenario-driven facility model: simulate any fleet
//!   description over a planning horizon ([`Facility`] / [`FacilityYear`],
//!   with a per-SKU breakdown per year); `ext-facility`, `fig02` and
//!   `fig11` all route through it.
//! * [`fleet`] — mixed-SKU fleet composition ([`FleetMix`]): weighted
//!   server SKUs deployed in proportion, sharing the heterogeneity slice
//!   math.
//! * [`prineville`] — the disclosed Prineville trajectory the paper charts;
//!   the paper-default scenario reproduces it bit for bit.
//! * [`server`] — per-SKU power/embodied-carbon descriptions and the SKU
//!   catalog.
//! * [`scheduler`] — carbon-aware placement of deferrable load across hours
//!   and sites against per-region intensity traces (`ext-sched`,
//!   `ext-scheduler`).
//! * [`heterogeneity`] — general-purpose vs accelerator provisioning
//!   (`ext-hetero`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod facility;
pub mod fleet;
pub mod heterogeneity;
pub mod prineville;
pub mod scheduler;
pub mod server;

pub use facility::{Facility, FacilityYear, SkuYear};
pub use fleet::FleetMix;
pub use scheduler::{
    CarbonAwareScheduler, DayProfile, FleetSchedule, MultiSiteScheduler, SitePlan,
};
pub use server::ServerConfig;
