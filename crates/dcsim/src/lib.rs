//! # cc-dcsim
//!
//! A warehouse-scale data-center simulator: server fleets with PUE overhead,
//! year-by-year energy demand, renewable (PPA) procurement, construction and
//! hardware embodied carbon, the Prineville-like scenario behind Fig 2
//! (left), and a carbon-aware batch scheduler implementing the Section VI
//! research direction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod facility;
pub mod heterogeneity;
pub mod prineville;
pub mod scheduler;
pub mod server;

pub use facility::{Facility, FacilityYear};
pub use scheduler::{CarbonAwareScheduler, DayProfile};
pub use server::ServerConfig;
