//! Carbon-aware batch scheduling (Section VI, "Run-time systems").
//!
//! "recent work proposes scheduling batch-processing workloads during periods
//! when renewable energy is readily available. Doing so decreases the average
//! carbon intensity of energy consumed by data-center services."
//!
//! The model: a 24-hour grid-intensity profile (solar-shaped by default), a
//! latency-critical base load that must run as-is, and a deferrable batch
//! load that the scheduler may move within the day subject to an hourly
//! capacity cap.

use cc_units::{CarbonIntensity, CarbonMass, Energy};

/// A 24-hour profile of grid carbon intensity and hourly load.
#[derive(Debug, Clone, PartialEq)]
pub struct DayProfile {
    /// Grid intensity per hour (g CO₂e/kWh).
    pub intensity: [f64; 24],
    /// Latency-critical energy per hour.
    pub base_load: [Energy; 24],
    /// Total deferrable (batch) energy for the day.
    pub batch_energy: Energy,
    /// Maximum total energy the facility can draw in any hour.
    pub hourly_capacity: Energy,
}

impl DayProfile {
    /// A solar-heavy grid: clean mid-day (solar online), dirty at night
    /// (gas peakers). Intensities interpolate between 380 (night) and
    /// 120 g/kWh (noon).
    #[must_use]
    pub fn solar_grid(base_mwh_per_hour: f64, batch_mwh: f64, capacity_mwh_per_hour: f64) -> Self {
        let mut intensity = [380.0; 24];
        for (hour, slot) in intensity.iter_mut().enumerate() {
            // Daylight window 7..19 with a cosine dip centred at 13:00.
            let h = hour as f64;
            if (7.0..19.0).contains(&h) {
                let x = (h - 13.0) / 6.0; // -1..1 across the window
                let dip = 0.5 * (1.0 + (core::f64::consts::PI * x).cos()); // 0..1
                *slot = 380.0 - 260.0 * dip;
            }
        }
        Self {
            intensity,
            base_load: [Energy::from_mwh(base_mwh_per_hour); 24],
            batch_energy: Energy::from_mwh(batch_mwh),
            hourly_capacity: Energy::from_mwh(capacity_mwh_per_hour),
        }
    }

    /// Intensity of one hour as a typed quantity.
    #[must_use]
    pub fn intensity_at(&self, hour: usize) -> CarbonIntensity {
        CarbonIntensity::from_g_per_kwh(self.intensity[hour])
    }

    /// Carbon from the base load alone.
    #[must_use]
    pub fn base_carbon(&self) -> CarbonMass {
        (0..24)
            .map(|h| self.base_load[h] * self.intensity_at(h))
            .sum()
    }
}

/// How batch energy was placed across the day.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Batch energy placed per hour.
    pub batch_per_hour: [Energy; 24],
    /// Total carbon (base + batch).
    pub total_carbon: CarbonMass,
}

impl Schedule {
    /// Carbon attributable to the batch placement alone.
    #[must_use]
    pub fn batch_carbon(&self, profile: &DayProfile) -> CarbonMass {
        (0..24)
            .map(|h| self.batch_per_hour[h] * profile.intensity_at(h))
            .sum()
    }
}

/// The carbon-aware scheduler and its naive baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CarbonAwareScheduler;

impl CarbonAwareScheduler {
    /// Baseline: spread batch energy uniformly across the day (what a
    /// throughput scheduler with no carbon signal does).
    ///
    /// # Panics
    ///
    /// Panics if even the uniform split violates hourly capacity.
    #[must_use]
    pub fn uniform(profile: &DayProfile) -> Schedule {
        let per_hour = profile.batch_energy / 24.0;
        let batch = [per_hour; 24];
        for h in 0..24 {
            assert!(
                profile.base_load[h] + per_hour <= profile.hourly_capacity,
                "uniform schedule violates capacity at hour {h}"
            );
        }
        Self::finish(profile, batch)
    }

    /// Carbon-aware: greedily fill the cleanest hours first, up to capacity.
    ///
    /// # Panics
    ///
    /// Panics if the day lacks capacity for the batch energy.
    #[must_use]
    pub fn carbon_aware(profile: &DayProfile) -> Schedule {
        let mut hours: Vec<usize> = (0..24).collect();
        hours.sort_by(|&a, &b| {
            profile.intensity[a]
                .partial_cmp(&profile.intensity[b])
                .unwrap()
        });
        let mut remaining = profile.batch_energy;
        let mut batch = [Energy::ZERO; 24];
        for h in hours {
            if remaining <= Energy::ZERO {
                break;
            }
            let headroom = (profile.hourly_capacity - profile.base_load[h]).max(Energy::ZERO);
            let placed = headroom.min(remaining);
            batch[h] = placed;
            remaining -= placed;
        }
        assert!(
            remaining <= Energy::from_joules(1e-6),
            "insufficient daily capacity for batch energy"
        );
        Self::finish(profile, batch)
    }

    fn finish(profile: &DayProfile, batch_per_hour: [Energy; 24]) -> Schedule {
        let batch_carbon: CarbonMass = (0..24)
            .map(|h| batch_per_hour[h] * profile.intensity_at(h))
            .sum();
        Schedule {
            batch_per_hour,
            total_carbon: profile.base_carbon() + batch_carbon,
        }
    }

    /// Carbon saved by carbon-aware placement vs the uniform baseline.
    #[must_use]
    pub fn savings(profile: &DayProfile) -> CarbonMass {
        Self::uniform(profile).total_carbon - Self::carbon_aware(profile).total_carbon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> DayProfile {
        DayProfile::solar_grid(5.0, 60.0, 15.0)
    }

    #[test]
    fn solar_profile_shape() {
        let p = profile();
        assert_eq!(p.intensity[0], 380.0);
        assert!(p.intensity[13] < 130.0);
        assert!(p.intensity[13] < p.intensity[9]);
    }

    #[test]
    fn both_schedules_place_all_batch_energy() {
        let p = profile();
        for schedule in [
            CarbonAwareScheduler::uniform(&p),
            CarbonAwareScheduler::carbon_aware(&p),
        ] {
            let placed: Energy = schedule.batch_per_hour.iter().copied().sum();
            assert!((placed / p.batch_energy - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn carbon_aware_respects_capacity() {
        let p = profile();
        let s = CarbonAwareScheduler::carbon_aware(&p);
        for h in 0..24 {
            assert!(
                p.base_load[h] + s.batch_per_hour[h]
                    <= p.hourly_capacity + Energy::from_joules(1.0)
            );
        }
    }

    #[test]
    fn carbon_aware_beats_uniform_meaningfully() {
        let p = profile();
        let uniform = CarbonAwareScheduler::uniform(&p);
        let aware = CarbonAwareScheduler::carbon_aware(&p);
        assert!(aware.total_carbon < uniform.total_carbon);
        // Batch-attributable carbon drops by >30% on a solar-shaped grid.
        let cut = 1.0 - aware.batch_carbon(&p) / uniform.batch_carbon(&p);
        assert!(cut > 0.30, "cut {cut}");
        assert!(
            (CarbonAwareScheduler::savings(&p) / (uniform.total_carbon - aware.total_carbon) - 1.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn base_load_carbon_is_unaffected() {
        let p = profile();
        // Base carbon is the same term in both schedules by construction.
        let uniform = CarbonAwareScheduler::uniform(&p);
        let aware = CarbonAwareScheduler::carbon_aware(&p);
        let base = p.base_carbon();
        assert!((uniform.total_carbon - uniform.batch_carbon(&p)) / base - 1.0 < 1e-9);
        assert!((aware.total_carbon - aware.batch_carbon(&p)) / base - 1.0 < 1e-9);
    }

    #[test]
    #[should_panic(expected = "insufficient daily capacity")]
    fn over_subscribed_day_panics() {
        let p = DayProfile::solar_grid(14.0, 100.0, 15.0);
        let _ = CarbonAwareScheduler::carbon_aware(&p);
    }
}
