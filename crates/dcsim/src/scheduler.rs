//! Carbon-aware placement of deferrable load across hours *and* sites
//! (Section VI, "Run-time systems").
//!
//! "recent work proposes scheduling batch-processing workloads during periods
//! when renewable energy is readily available. Doing so decreases the average
//! carbon intensity of energy consumed by data-center services."
//!
//! The model: every site in a fleet has a 24-hour grid-intensity trace
//! ([`IntensityTrace`]), a latency-critical base load that must run in place,
//! an hourly capacity cap, and a daily budget of deferrable (batch/AI
//! training) energy. [`MultiSiteScheduler`] places each unit of deferrable
//! energy into the cheapest remaining (site, hour) slot, where "cheap" is the
//! destination's carbon intensity inflated by a migration overhead when the
//! work leaves its home site — follow-the-sun scheduling with an explicit
//! migration cost. The baseline ([`MultiSiteScheduler::static_placement`])
//! runs every site's deferrable load at home, spread uniformly over the day;
//! the difference is the fleet's *avoided carbon*.
//!
//! The original single-site, single-day API ([`DayProfile`],
//! [`CarbonAwareScheduler`]) is kept and now runs through the multi-site
//! engine as the one-site special case.

use cc_units::{CarbonIntensity, CarbonMass, Energy, IntensityTrace};

/// Default migration overhead: moving one unit of deferrable energy to
/// another site costs 2% extra energy at the destination (checkpoint
/// transfer, warm-up, network).
pub const DEFAULT_MIGRATION_OVERHEAD: f64 = 0.02;

/// Slack tolerance when checking that all deferrable energy was placed.
const PLACEMENT_SLACK: f64 = 1e-6;

/// One site's day in the fleet placement problem.
#[derive(Debug, Clone, PartialEq)]
pub struct SitePlan {
    /// Site name (for artifacts and error messages).
    pub name: String,
    /// The site's grid carbon-intensity trace.
    pub trace: IntensityTrace,
    /// Latency-critical energy per hour, which must run in place.
    pub base_load: [Energy; 24],
    /// Maximum total energy the site can draw in any hour.
    pub hourly_capacity: Energy,
    /// The site's daily budget of deferrable (batch) energy.
    pub deferrable: Energy,
}

impl SitePlan {
    /// A site with a flat base load, in MWh units.
    #[must_use]
    pub fn flat(
        name: impl Into<String>,
        trace: IntensityTrace,
        base_mwh_per_hour: f64,
        deferrable_mwh: f64,
        capacity_mwh_per_hour: f64,
    ) -> Self {
        Self {
            name: name.into(),
            trace,
            base_load: [Energy::from_mwh(base_mwh_per_hour); 24],
            hourly_capacity: Energy::from_mwh(capacity_mwh_per_hour),
            deferrable: Energy::from_mwh(deferrable_mwh),
        }
    }

    /// Carbon from the site's base load alone.
    #[must_use]
    pub fn base_carbon(&self) -> CarbonMass {
        (0..24).map(|h| self.base_load[h] * self.trace.at(h)).sum()
    }

    /// Spare capacity at hour `h` (never negative).
    #[must_use]
    pub fn headroom(&self, h: usize) -> Energy {
        (self.hourly_capacity - self.base_load[h]).max(Energy::ZERO)
    }
}

/// How the fleet's deferrable energy was placed, and what it cost.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSchedule {
    /// Useful deferrable energy placed per site per hour (site order matches
    /// the input slice). Sums to the fleet's total deferrable budget.
    pub placement: Vec<[Energy; 24]>,
    /// The subset of [`Self::placement`] that migrated in from another site.
    pub imported: Vec<[Energy; 24]>,
    /// Total fleet carbon: base + placed deferrable + migration overhead.
    pub total_carbon: CarbonMass,
    /// Total deferrable energy that ran away from its home site.
    pub migrated_energy: Energy,
}

impl FleetSchedule {
    /// Deferrable energy placed at site `site` over the whole day.
    #[must_use]
    pub fn placed_at(&self, site: usize) -> Energy {
        self.placement[site].iter().copied().sum()
    }

    /// Carbon attributable to deferrable placement alone (including
    /// migration overhead), given the plans the schedule was built from.
    #[must_use]
    pub fn deferrable_carbon(&self, sites: &[SitePlan], migration_overhead: f64) -> CarbonMass {
        let mut total = CarbonMass::ZERO;
        for (s, site) in sites.iter().enumerate() {
            for h in 0..24 {
                total += self.placement[s][h] * site.trace.at(h);
                total += self.imported[s][h] * site.trace.at(h) * migration_overhead;
            }
        }
        total
    }
}

/// The fleet-level carbon-aware scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiSiteScheduler {
    /// Fractional energy overhead charged (at the destination's intensity)
    /// for every unit of deferrable energy that runs away from home.
    pub migration_overhead: f64,
}

impl Default for MultiSiteScheduler {
    fn default() -> Self {
        Self {
            migration_overhead: DEFAULT_MIGRATION_OVERHEAD,
        }
    }
}

impl MultiSiteScheduler {
    /// A scheduler with an explicit migration overhead.
    #[must_use]
    pub fn with_overhead(migration_overhead: f64) -> Self {
        Self { migration_overhead }
    }

    /// Baseline: every site runs its own deferrable budget at home, spread
    /// uniformly across the day (what a throughput scheduler with no carbon
    /// signal does). No energy migrates.
    ///
    /// # Panics
    ///
    /// Panics if any site's uniform split violates its hourly capacity.
    #[must_use]
    pub fn static_placement(&self, sites: &[SitePlan]) -> FleetSchedule {
        assert!(
            Self::static_feasible(sites),
            "static placement violates hourly capacity"
        );
        let placement: Vec<[Energy; 24]> =
            sites.iter().map(|s| [s.deferrable / 24.0; 24]).collect();
        let imported = vec![[Energy::ZERO; 24]; sites.len()];
        self.finish(sites, placement, imported)
    }

    /// Whether every site can absorb its own deferrable budget uniformly.
    #[must_use]
    pub fn static_feasible(sites: &[SitePlan]) -> bool {
        sites.iter().all(|s| {
            let per_hour = s.deferrable / 24.0;
            (0..24)
                .all(|h| s.base_load[h] + per_hour <= s.hourly_capacity + Energy::from_joules(1.0))
        })
    }

    /// Carbon-aware placement: greedily fill the cheapest (site, hour) slots
    /// first, where a slot's per-unit cost is the destination's intensity at
    /// that hour, inflated by [`Self::migration_overhead`] when the energy's
    /// home site differs from the destination. Fully deterministic: cost
    /// ties break on (source, destination, hour) order.
    ///
    /// The greedy placement can (rarely, with migration overheads) lose to
    /// the static baseline; in that case the static plan is returned, so
    /// avoided carbon is never negative.
    ///
    /// # Panics
    ///
    /// Panics if the fleet lacks capacity for its total deferrable energy.
    #[must_use]
    pub fn carbon_aware(&self, sites: &[SitePlan]) -> FleetSchedule {
        let n = sites.len();
        // Per-unit cost of running src's work at (dst, hour).
        let mut slots: Vec<(f64, usize, usize, usize)> = Vec::with_capacity(n * n * 24);
        for (src, _) in sites.iter().enumerate() {
            for (dst, site) in sites.iter().enumerate() {
                let inflation = if src == dst {
                    1.0
                } else {
                    1.0 + self.migration_overhead
                };
                for h in 0..24 {
                    slots.push((site.trace.g_per_kwh(h) * inflation, src, dst, h));
                }
            }
        }
        slots.sort_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then(a.1.cmp(&b.1))
                .then(a.2.cmp(&b.2))
                .then(a.3.cmp(&b.3))
        });

        let mut remaining: Vec<Energy> = sites.iter().map(|s| s.deferrable).collect();
        let mut headroom: Vec<[Energy; 24]> = sites
            .iter()
            .map(|s| core::array::from_fn(|h| s.headroom(h)))
            .collect();
        let mut placement = vec![[Energy::ZERO; 24]; n];
        let mut imported = vec![[Energy::ZERO; 24]; n];
        for (_, src, dst, h) in slots {
            if remaining[src] <= Energy::ZERO {
                continue;
            }
            let placed = headroom[dst][h].min(remaining[src]);
            if placed <= Energy::ZERO {
                continue;
            }
            placement[dst][h] += placed;
            if src != dst {
                imported[dst][h] += placed;
            }
            headroom[dst][h] -= placed;
            remaining[src] -= placed;
        }
        let unplaced: Energy = remaining.iter().copied().sum();
        assert!(
            unplaced <= Energy::from_joules(PLACEMENT_SLACK),
            "insufficient daily capacity for batch energy"
        );
        let aware = self.finish(sites, placement, imported);
        if Self::static_feasible(sites) {
            let baseline = self.static_placement(sites);
            if baseline.total_carbon < aware.total_carbon {
                return baseline;
            }
        }
        aware
    }

    /// Carbon avoided by carbon-aware placement vs the static baseline.
    /// Never negative (see [`Self::carbon_aware`]).
    ///
    /// # Panics
    ///
    /// Panics if the static baseline is infeasible.
    #[must_use]
    pub fn avoided_carbon(&self, sites: &[SitePlan]) -> CarbonMass {
        self.static_placement(sites).total_carbon - self.carbon_aware(sites).total_carbon
    }

    fn finish(
        &self,
        sites: &[SitePlan],
        placement: Vec<[Energy; 24]>,
        imported: Vec<[Energy; 24]>,
    ) -> FleetSchedule {
        let mut base = CarbonMass::ZERO;
        let mut deferrable = CarbonMass::ZERO;
        let mut migration = CarbonMass::ZERO;
        let mut migrated = Energy::ZERO;
        for (s, site) in sites.iter().enumerate() {
            for h in 0..24 {
                base += site.base_load[h] * site.trace.at(h);
                deferrable += placement[s][h] * site.trace.at(h);
                migration += imported[s][h] * site.trace.at(h) * self.migration_overhead;
                migrated += imported[s][h];
            }
        }
        FleetSchedule {
            placement,
            imported,
            total_carbon: base + deferrable + migration,
            migrated_energy: migrated,
        }
    }
}

/// A 24-hour profile of grid carbon intensity and hourly load for a single
/// site — the one-site special case of the fleet problem.
#[derive(Debug, Clone, PartialEq)]
pub struct DayProfile {
    /// Grid intensity per hour (g CO₂e/kWh).
    pub intensity: [f64; 24],
    /// Latency-critical energy per hour.
    pub base_load: [Energy; 24],
    /// Total deferrable (batch) energy for the day.
    pub batch_energy: Energy,
    /// Maximum total energy the facility can draw in any hour.
    pub hourly_capacity: Energy,
}

impl DayProfile {
    /// A solar-heavy grid: clean mid-day (solar online), dirty at night
    /// (gas peakers). Intensities interpolate between 380 (night) and
    /// 120 g/kWh (noon) via [`IntensityTrace::solar_day`].
    #[must_use]
    pub fn solar_grid(base_mwh_per_hour: f64, batch_mwh: f64, capacity_mwh_per_hour: f64) -> Self {
        Self {
            intensity: *IntensityTrace::solar_day(380.0, 120.0).hours(),
            base_load: [Energy::from_mwh(base_mwh_per_hour); 24],
            batch_energy: Energy::from_mwh(batch_mwh),
            hourly_capacity: Energy::from_mwh(capacity_mwh_per_hour),
        }
    }

    /// Intensity of one hour as a typed quantity.
    #[must_use]
    pub fn intensity_at(&self, hour: usize) -> CarbonIntensity {
        CarbonIntensity::from_g_per_kwh(self.intensity[hour])
    }

    /// Carbon from the base load alone.
    #[must_use]
    pub fn base_carbon(&self) -> CarbonMass {
        (0..24)
            .map(|h| self.base_load[h] * self.intensity_at(h))
            .sum()
    }

    /// The profile as a one-site fleet plan.
    #[must_use]
    pub fn to_site_plan(&self) -> SitePlan {
        SitePlan {
            name: "site".to_string(),
            trace: IntensityTrace::from_raw(self.intensity),
            base_load: self.base_load,
            hourly_capacity: self.hourly_capacity,
            deferrable: self.batch_energy,
        }
    }
}

/// How batch energy was placed across the day at a single site.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Batch energy placed per hour.
    pub batch_per_hour: [Energy; 24],
    /// Total carbon (base + batch).
    pub total_carbon: CarbonMass,
}

impl Schedule {
    /// Carbon attributable to the batch placement alone.
    #[must_use]
    pub fn batch_carbon(&self, profile: &DayProfile) -> CarbonMass {
        (0..24)
            .map(|h| self.batch_per_hour[h] * profile.intensity_at(h))
            .sum()
    }

    fn from_fleet(fleet: &FleetSchedule) -> Self {
        Self {
            batch_per_hour: fleet.placement[0],
            total_carbon: fleet.total_carbon,
        }
    }
}

/// The single-site carbon-aware scheduler and its naive baseline, routed
/// through [`MultiSiteScheduler`] as the one-site special case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CarbonAwareScheduler;

impl CarbonAwareScheduler {
    /// Baseline: spread batch energy uniformly across the day (what a
    /// throughput scheduler with no carbon signal does).
    ///
    /// # Panics
    ///
    /// Panics if even the uniform split violates hourly capacity.
    #[must_use]
    pub fn uniform(profile: &DayProfile) -> Schedule {
        let fleet = MultiSiteScheduler::default().static_placement(&[profile.to_site_plan()]);
        Schedule::from_fleet(&fleet)
    }

    /// Carbon-aware: greedily fill the cleanest hours first, up to capacity.
    ///
    /// # Panics
    ///
    /// Panics if the day lacks capacity for the batch energy.
    #[must_use]
    pub fn carbon_aware(profile: &DayProfile) -> Schedule {
        let fleet = MultiSiteScheduler::default().carbon_aware(&[profile.to_site_plan()]);
        Schedule::from_fleet(&fleet)
    }

    /// Carbon saved by carbon-aware placement vs the uniform baseline.
    #[must_use]
    pub fn savings(profile: &DayProfile) -> CarbonMass {
        Self::uniform(profile).total_carbon - Self::carbon_aware(profile).total_carbon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> DayProfile {
        DayProfile::solar_grid(5.0, 60.0, 15.0)
    }

    #[test]
    fn solar_profile_shape() {
        let p = profile();
        assert_eq!(p.intensity[0], 380.0);
        assert!(p.intensity[13] < 130.0);
        assert!(p.intensity[13] < p.intensity[9]);
    }

    #[test]
    fn both_schedules_place_all_batch_energy() {
        let p = profile();
        for schedule in [
            CarbonAwareScheduler::uniform(&p),
            CarbonAwareScheduler::carbon_aware(&p),
        ] {
            let placed: Energy = schedule.batch_per_hour.iter().copied().sum();
            assert!((placed / p.batch_energy - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn carbon_aware_respects_capacity() {
        let p = profile();
        let s = CarbonAwareScheduler::carbon_aware(&p);
        for h in 0..24 {
            assert!(
                p.base_load[h] + s.batch_per_hour[h]
                    <= p.hourly_capacity + Energy::from_joules(1.0)
            );
        }
    }

    #[test]
    fn carbon_aware_beats_uniform_meaningfully() {
        let p = profile();
        let uniform = CarbonAwareScheduler::uniform(&p);
        let aware = CarbonAwareScheduler::carbon_aware(&p);
        assert!(aware.total_carbon < uniform.total_carbon);
        // Batch-attributable carbon drops by >30% on a solar-shaped grid.
        let cut = 1.0 - aware.batch_carbon(&p) / uniform.batch_carbon(&p);
        assert!(cut > 0.30, "cut {cut}");
        assert!(
            (CarbonAwareScheduler::savings(&p) / (uniform.total_carbon - aware.total_carbon) - 1.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn base_load_carbon_is_unaffected() {
        let p = profile();
        // Base carbon is the same term in both schedules by construction.
        let uniform = CarbonAwareScheduler::uniform(&p);
        let aware = CarbonAwareScheduler::carbon_aware(&p);
        let base = p.base_carbon();
        assert!((uniform.total_carbon - uniform.batch_carbon(&p)) / base - 1.0 < 1e-9);
        assert!((aware.total_carbon - aware.batch_carbon(&p)) / base - 1.0 < 1e-9);
    }

    #[test]
    #[should_panic(expected = "insufficient daily capacity")]
    fn over_subscribed_day_panics() {
        let p = DayProfile::solar_grid(14.0, 100.0, 15.0);
        let _ = CarbonAwareScheduler::carbon_aware(&p);
    }

    fn two_sites() -> Vec<SitePlan> {
        vec![
            SitePlan::flat(
                "solar",
                IntensityTrace::solar_day(380.0, 120.0),
                5.0,
                60.0,
                15.0,
            ),
            SitePlan::flat("hydro", IntensityTrace::flat(24.0), 5.0, 20.0, 15.0),
        ]
    }

    #[test]
    fn migration_chases_the_clean_site() {
        let sites = two_sites();
        let sched = MultiSiteScheduler::default();
        let aware = sched.carbon_aware(&sites);
        // The hydro site absorbs migrated solar-site work: it ends up
        // running more than its own budget.
        assert!(aware.placed_at(1) > sites[1].deferrable);
        assert!(aware.migrated_energy > Energy::ZERO);
        // Energy is conserved across the fleet.
        let placed: Energy = (0..2).map(|s| aware.placed_at(s)).sum();
        let budget: Energy = sites.iter().map(|s| s.deferrable).sum();
        assert!((placed / budget - 1.0).abs() < 1e-9);
        // And the move pays: avoided carbon is strictly positive.
        assert!(sched.avoided_carbon(&sites) > CarbonMass::ZERO);
    }

    #[test]
    fn migration_overhead_is_charged_at_the_destination() {
        let sites = two_sites();
        let free = MultiSiteScheduler::with_overhead(0.0).carbon_aware(&sites);
        let costly = MultiSiteScheduler::with_overhead(0.5).carbon_aware(&sites);
        // A 50% overhead can never beat free migration.
        assert!(costly.total_carbon >= free.total_carbon);
        // With overhead 0.5, importing into hydro (24 g/kWh → 36 effective)
        // still beats solar nights (380), so migration persists.
        assert!(costly.migrated_energy > Energy::ZERO);
    }

    #[test]
    fn prohibitive_overhead_collapses_to_local_scheduling() {
        let sites = two_sites();
        // 10000% overhead: migrating into hydro costs 24*101 = 2424 g/kWh,
        // worse than any local hour; everything runs at home.
        let sched = MultiSiteScheduler::with_overhead(100.0);
        let aware = sched.carbon_aware(&sites);
        assert_eq!(aware.migrated_energy, Energy::ZERO);
        for (s, site) in sites.iter().enumerate() {
            assert!((aware.placed_at(s) / site.deferrable - 1.0).abs() < 1e-9);
        }
        // Local-only carbon-aware still beats static (time shifting alone).
        assert!(sched.avoided_carbon(&sites) > CarbonMass::ZERO);
    }

    #[test]
    fn single_site_fleet_matches_the_legacy_scheduler() {
        let p = profile();
        let fleet = MultiSiteScheduler::default().carbon_aware(&[p.to_site_plan()]);
        let legacy = CarbonAwareScheduler::carbon_aware(&p);
        assert_eq!(fleet.placement[0], legacy.batch_per_hour);
        assert_eq!(fleet.total_carbon, legacy.total_carbon);
        assert_eq!(fleet.migrated_energy, Energy::ZERO);
    }

    #[test]
    fn zero_deferrable_fleet_is_identical_to_static() {
        let mut sites = two_sites();
        for s in &mut sites {
            s.deferrable = Energy::ZERO;
        }
        let sched = MultiSiteScheduler::default();
        let aware = sched.carbon_aware(&sites);
        let baseline = sched.static_placement(&sites);
        assert_eq!(aware, baseline);
        assert_eq!(sched.avoided_carbon(&sites), CarbonMass::ZERO);
    }

    #[test]
    #[should_panic(expected = "static placement violates hourly capacity")]
    fn infeasible_static_baseline_panics() {
        let sites = vec![SitePlan::flat(
            "tiny",
            IntensityTrace::flat(100.0),
            14.0,
            100.0,
            15.0,
        )];
        let _ = MultiSiteScheduler::default().static_placement(&sites);
    }
}
