//! Server configurations: operational power and embodied carbon.

use cc_units::{CarbonMass, Power, TimeSpan};

/// A server SKU deployed in the facility.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// SKU name.
    pub name: String,
    /// Average wall power per server (IT load, before PUE).
    pub average_power_w: f64,
    /// Embodied (manufacturing) carbon per server in kg CO₂e.
    pub embodied_kg: f64,
    /// Refresh lifetime in years ("data centers typically maintain
    /// server-class CPUs for three to four years").
    pub lifetime_years: f64,
}

impl ServerConfig {
    /// A web/front-end server.
    #[must_use]
    pub fn web() -> Self {
        Self {
            name: "web".into(),
            average_power_w: 250.0,
            embodied_kg: 1_100.0,
            lifetime_years: 4.0,
        }
    }

    /// A storage-heavy server.
    #[must_use]
    pub fn storage() -> Self {
        Self {
            name: "storage".into(),
            average_power_w: 350.0,
            embodied_kg: 1_700.0,
            lifetime_years: 4.0,
        }
    }

    /// A GPU training server (the paper: AI training hardware grew 4× in
    /// under two years).
    #[must_use]
    pub fn ai_training() -> Self {
        Self {
            name: "ai-training".into(),
            average_power_w: 1_500.0,
            embodied_kg: 4_500.0,
            lifetime_years: 3.0,
        }
    }

    /// The full SKU catalog a fleet may be composed of. The scenario
    /// layer's `cc_report::scenario::KNOWN_SKUS` mirrors these names (a
    /// cross-crate test keeps them agreeing).
    #[must_use]
    pub fn catalog() -> [Self; 3] {
        [Self::web(), Self::storage(), Self::ai_training()]
    }

    /// Finds the catalog SKU named `name` (`"web"`, `"storage"`,
    /// `"ai-training"`).
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        Self::catalog().into_iter().find(|s| s.name == name)
    }

    /// Average power as a typed quantity.
    #[must_use]
    pub fn average_power(&self) -> Power {
        Power::from_watts(self.average_power_w)
    }

    /// Embodied carbon as a typed quantity.
    #[must_use]
    pub fn embodied(&self) -> CarbonMass {
        CarbonMass::from_kg(self.embodied_kg)
    }

    /// Refresh lifetime.
    #[must_use]
    pub fn lifetime(&self) -> TimeSpan {
        TimeSpan::from_years(self.lifetime_years)
    }

    /// Embodied carbon amortized per year of service.
    #[must_use]
    pub fn embodied_per_year(&self) -> CarbonMass {
        self.embodied() / self.lifetime_years
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sku_catalog() {
        for sku in [
            ServerConfig::web(),
            ServerConfig::storage(),
            ServerConfig::ai_training(),
        ] {
            assert!(sku.average_power().as_watts() > 0.0);
            assert!(sku.embodied() > CarbonMass::ZERO);
            assert!(sku.lifetime().as_years() >= 3.0 && sku.lifetime().as_years() <= 4.0);
        }
    }

    #[test]
    fn ai_servers_are_heaviest() {
        let ai = ServerConfig::ai_training();
        let web = ServerConfig::web();
        assert!(ai.average_power() > web.average_power() * 5.0);
        assert!(ai.embodied() > web.embodied() * 3.0);
    }

    #[test]
    fn amortization() {
        let web = ServerConfig::web();
        let per_year = web.embodied_per_year();
        assert!((per_year.as_kg() - 275.0).abs() < 1e-9);
    }
}
