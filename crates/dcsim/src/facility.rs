//! A warehouse-scale facility simulated year by year.

use crate::server::ServerConfig;
use cc_ghg::{CorporateInventory, PpaPortfolio};
use cc_units::{CarbonMass, Energy, TimeSpan};

/// One simulated year of a facility.
#[derive(Debug, Clone, PartialEq)]
pub struct FacilityYear {
    /// Calendar year.
    pub year: u16,
    /// Servers in service.
    pub servers: u64,
    /// IT + overhead energy consumed.
    pub energy: Energy,
    /// Location-based operational carbon (grid counterfactual).
    pub location_carbon: CarbonMass,
    /// Market-based operational carbon (after PPAs).
    pub market_carbon: CarbonMass,
    /// Capex carbon booked this year: amortized construction plus embodied
    /// carbon of newly deployed servers.
    pub capex_carbon: CarbonMass,
}

impl FacilityYear {
    /// Scope-style inventory view of this year (Scope 1 omitted — diesel and
    /// refrigerants are negligible next to the other terms at facility
    /// granularity).
    #[must_use]
    pub fn inventory(&self) -> CorporateInventory {
        CorporateInventory::builder()
            .scope2_location(self.location_carbon)
            .scope2_market(self.market_carbon)
            .scope3(self.capex_carbon)
            .build()
    }
}

/// A facility: server fleet growth, PUE, construction footprint and a PPA
/// portfolio that ramps over time.
///
/// ```
/// use cc_dcsim::{Facility, ServerConfig};
/// use cc_units::CarbonMass;
///
/// let mut facility = Facility::builder("example", 2013, ServerConfig::web())
///     .initial_servers(20_000)
///     .server_growth(1.35)
///     .pue(1.12)
///     .construction(CarbonMass::from_kt(120.0))
///     .build();
/// let years = facility.simulate(7);
/// assert_eq!(years.len(), 7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Facility {
    name: String,
    start_year: u16,
    sku: ServerConfig,
    initial_servers: u64,
    server_growth: f64,
    pue: f64,
    construction: CarbonMass,
    construction_amortization_years: f64,
    grid: cc_units::CarbonIntensity,
    /// Renewable coverage fraction per simulated year index.
    renewable_ramp: Vec<f64>,
    renewable_source: cc_data::energy_sources::EnergySource,
}

impl Facility {
    /// Starts a builder.
    #[must_use]
    pub fn builder(name: impl Into<String>, start_year: u16, sku: ServerConfig) -> FacilityBuilder {
        FacilityBuilder {
            facility: Facility {
                name: name.into(),
                start_year,
                sku,
                initial_servers: 10_000,
                server_growth: 1.25,
                pue: 1.12,
                construction: CarbonMass::from_kt(100.0),
                construction_amortization_years: 20.0,
                grid: cc_data::us_grid_intensity(),
                renewable_ramp: Vec::new(),
                renewable_source: cc_data::energy_sources::EnergySource::Wind,
            },
        }
    }

    /// Facility name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renewable coverage for simulated year index `i` (clamped to the last
    /// configured value; 0 when no ramp is configured).
    fn coverage(&self, i: usize) -> f64 {
        match self.renewable_ramp.as_slice() {
            [] => 0.0,
            ramp => ramp[i.min(ramp.len() - 1)].clamp(0.0, 1.0),
        }
    }

    /// Simulates `years` consecutive years from the start year.
    #[must_use]
    pub fn simulate(&mut self, years: usize) -> Vec<FacilityYear> {
        let mut out = Vec::with_capacity(years);
        let mut servers = self.initial_servers as f64;
        let mut prev_servers = 0.0f64;
        for i in 0..years {
            let year = self.start_year + i as u16;
            let it_power = self.sku.average_power() * servers;
            let energy = it_power * TimeSpan::from_years(1.0) * self.pue;

            let mut portfolio = PpaPortfolio::new(self.grid);
            let coverage = self.coverage(i);
            portfolio.contract(self.renewable_source, energy * coverage);
            let location = portfolio.location_carbon(energy);
            let market = portfolio.market_carbon(energy);

            let new_servers = (servers - prev_servers).max(0.0);
            let embodied = self.sku.embodied() * new_servers;
            let construction = self.construction / self.construction_amortization_years;
            out.push(FacilityYear {
                year,
                servers: servers.round() as u64,
                energy,
                location_carbon: location,
                market_carbon: market,
                capex_carbon: embodied + construction,
            });
            prev_servers = servers;
            servers *= self.server_growth;
        }
        out
    }
}

/// Builder for [`Facility`].
#[derive(Debug, Clone)]
pub struct FacilityBuilder {
    facility: Facility,
}

impl FacilityBuilder {
    /// Sets the initial server count (default 10,000).
    pub fn initial_servers(&mut self, servers: u64) -> &mut Self {
        self.facility.initial_servers = servers;
        self
    }

    /// Sets the yearly fleet growth factor (default 1.25).
    ///
    /// # Panics
    ///
    /// Panics when the factor is not positive.
    pub fn server_growth(&mut self, factor: f64) -> &mut Self {
        assert!(factor > 0.0, "growth factor must be positive");
        self.facility.server_growth = factor;
        self
    }

    /// Sets the power usage effectiveness (default 1.12, warehouse-scale
    /// best practice).
    ///
    /// # Panics
    ///
    /// Panics when PUE < 1.
    pub fn pue(&mut self, pue: f64) -> &mut Self {
        assert!(pue >= 1.0, "PUE is a multiplier >= 1");
        self.facility.pue = pue;
        self
    }

    /// Sets the total construction embodied carbon (default 100 kt),
    /// amortized over 20 years.
    pub fn construction(&mut self, carbon: CarbonMass) -> &mut Self {
        self.facility.construction = carbon;
        self
    }

    /// Sets the location grid (default: US average).
    pub fn grid(&mut self, grid: cc_units::CarbonIntensity) -> &mut Self {
        self.facility.grid = grid;
        self
    }

    /// Sets the renewable coverage ramp: fraction of annual energy covered
    /// by PPAs in each simulated year (last value holds thereafter).
    pub fn renewable_ramp(&mut self, ramp: Vec<f64>) -> &mut Self {
        self.facility.renewable_ramp = ramp;
        self
    }

    /// Sets the contracted renewable source (default wind).
    pub fn renewable_source(&mut self, source: cc_data::energy_sources::EnergySource) -> &mut Self {
        self.facility.renewable_source = source;
        self
    }

    /// Finishes the build.
    #[must_use]
    pub fn build(&self) -> Facility {
        self.facility.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facility() -> Facility {
        Facility::builder("test", 2013, ServerConfig::web())
            .initial_servers(20_000)
            .server_growth(1.3)
            .renewable_ramp(vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0])
            .build()
    }

    #[test]
    fn energy_grows_with_fleet() {
        let years = facility().simulate(6);
        for pair in years.windows(2) {
            assert!(pair[1].energy > pair[0].energy);
            assert!(pair[1].servers > pair[0].servers);
        }
    }

    #[test]
    fn market_carbon_decouples_from_energy() {
        // The Fig 2 (left) shape: energy up, operational carbon down.
        let years = facility().simulate(6);
        let first = &years[0];
        let last = &years[5];
        assert!(last.energy > first.energy * 2.0);
        assert!(last.market_carbon < first.market_carbon);
        // Location-based keeps rising — the gap is renewable procurement.
        assert!(last.location_carbon > first.location_carbon);
    }

    #[test]
    fn full_coverage_is_near_zero_operational() {
        let years = facility().simulate(6);
        let last = &years[5];
        // Wind at 11 g/kWh vs grid 380: >30x below location-based.
        assert!(last.location_carbon / last.market_carbon > 30.0);
    }

    #[test]
    fn capex_includes_embodied_and_construction() {
        let years = facility().simulate(2);
        // Year 0 books the whole initial fleet.
        let y0_embodied = ServerConfig::web().embodied() * 20_000.0;
        let construction = CarbonMass::from_kt(100.0) / 20.0;
        assert!((years[0].capex_carbon / (y0_embodied + construction) - 1.0).abs() < 1e-9);
        // Year 1 books only the delta.
        assert!(years[1].capex_carbon < years[0].capex_carbon);
    }

    #[test]
    fn inventory_view() {
        let years = facility().simulate(6);
        let inv = years[5].inventory();
        assert!(
            inv.capex_share(cc_ghg::Scope2Method::MarketBased)
                .as_percent()
                > 50.0
        );
    }

    #[test]
    fn no_ramp_means_grid_carbon() {
        let mut f = Facility::builder("brown", 2013, ServerConfig::web()).build();
        let years = f.simulate(2);
        assert_eq!(years[0].location_carbon, years[0].market_carbon);
    }

    #[test]
    #[should_panic(expected = "PUE")]
    fn rejects_sub_unity_pue() {
        Facility::builder("bad", 2013, ServerConfig::web()).pue(0.9);
    }
}
