//! A warehouse-scale facility simulated year by year.

use crate::fleet::FleetMix;
use crate::server::ServerConfig;
use cc_ghg::{CorporateInventory, PpaPortfolio};
use cc_units::{CarbonMass, Energy, Power, TimeSpan};

/// One SKU's share of a simulated facility year.
#[derive(Debug, Clone, PartialEq)]
pub struct SkuYear {
    /// SKU name (`"web"`, `"ai-training"`, …).
    pub sku: String,
    /// Servers of this SKU in service (fractional: a weight share of the
    /// fleet).
    pub servers: f64,
    /// IT + overhead energy this SKU's slice consumed.
    pub energy: Energy,
    /// The slice's share of market-based operational carbon (proportional
    /// to its energy).
    pub market_carbon: CarbonMass,
    /// Embodied carbon of this SKU's newly deployed servers (facility-level
    /// construction carbon is not attributed to SKUs).
    pub embodied_carbon: CarbonMass,
}

/// One simulated year of a facility.
#[derive(Debug, Clone, PartialEq)]
pub struct FacilityYear {
    /// Calendar year.
    pub year: u16,
    /// Servers in service.
    pub servers: u64,
    /// IT + overhead energy consumed.
    pub energy: Energy,
    /// Location-based operational carbon (grid counterfactual).
    pub location_carbon: CarbonMass,
    /// Market-based operational carbon (after PPAs).
    pub market_carbon: CarbonMass,
    /// Capex carbon booked this year: amortized construction plus embodied
    /// carbon of newly deployed servers.
    pub capex_carbon: CarbonMass,
    /// Per-SKU breakdown of the fleet's share, in composition order (one
    /// entry for a pure fleet).
    pub per_sku: Vec<SkuYear>,
}

impl FacilityYear {
    /// Scope-style inventory view of this year (Scope 1 omitted — diesel and
    /// refrigerants are negligible next to the other terms at facility
    /// granularity).
    #[must_use]
    pub fn inventory(&self) -> CorporateInventory {
        CorporateInventory::builder()
            .scope2_location(self.location_carbon)
            .scope2_market(self.market_carbon)
            .scope3(self.capex_carbon)
            .build()
    }
}

/// A facility: server fleet growth, PUE, construction footprint and a PPA
/// portfolio that ramps over time.
///
/// ```
/// use cc_dcsim::{Facility, ServerConfig};
/// use cc_units::CarbonMass;
///
/// let mut facility = Facility::builder("example", 2013, ServerConfig::web())
///     .initial_servers(20_000)
///     .server_growth(1.35)
///     .pue(1.12)
///     .construction(CarbonMass::from_kt(120.0))
///     .build();
/// let years = facility.simulate(7);
/// assert_eq!(years.len(), 7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Facility {
    name: String,
    start_year: u16,
    mix: FleetMix,
    initial_servers: u64,
    server_growth: f64,
    pue: f64,
    construction: CarbonMass,
    construction_amortization_years: f64,
    grid: cc_units::CarbonIntensity,
    /// Renewable coverage fraction per simulated year index.
    renewable_ramp: Vec<f64>,
    renewable_source: cc_data::energy_sources::EnergySource,
}

impl Facility {
    /// Starts a builder deploying a pure fleet of `sku`; use
    /// [`FacilityBuilder::mix`] for a weighted multi-SKU composition.
    #[must_use]
    pub fn builder(name: impl Into<String>, start_year: u16, sku: ServerConfig) -> FacilityBuilder {
        FacilityBuilder {
            facility: Facility {
                name: name.into(),
                start_year,
                mix: FleetMix::pure(sku),
                initial_servers: 10_000,
                server_growth: 1.25,
                pue: 1.12,
                construction: CarbonMass::from_kt(100.0),
                construction_amortization_years: 20.0,
                grid: cc_data::us_grid_intensity(),
                renewable_ramp: Vec::new(),
                renewable_source: cc_data::energy_sources::EnergySource::Wind,
            },
        }
    }

    /// Facility name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renewable coverage for simulated year index `i` (clamped to the last
    /// configured value; 0 when no ramp is configured).
    fn coverage(&self, i: usize) -> f64 {
        match self.renewable_ramp.as_slice() {
            [] => 0.0,
            ramp => ramp[i.min(ramp.len() - 1)].clamp(0.0, 1.0),
        }
    }

    /// Simulates `years` consecutive years from the start year.
    #[must_use]
    pub fn simulate(&mut self, years: usize) -> Vec<FacilityYear> {
        let mut out = Vec::with_capacity(years);
        let mut servers = self.initial_servers as f64;
        let mut prev_servers = 0.0f64;
        // Everything that does not vary across simulated years is computed
        // once up front; per-SKU invariants in particular mean the year loop
        // allocates only the `per_sku` Vec each `FacilityYear` owns instead
        // of re-provisioning (and re-cloning every `SkuCapability`) per
        // year. The per-slice arithmetic below multiplies in the same order
        // as `FleetSlice::annual_energy`, so the breakdown stays
        // bit-identical to the provisioned path.
        let year_span = TimeSpan::from_years(1.0);
        let average_power = self.mix.average_power();
        let embodied_per_server = self.mix.embodied_per_server();
        let construction = self.construction / self.construction_amortization_years;
        let sku_table: Vec<(&str, f64, Power, CarbonMass)> = self
            .mix
            .slices()
            .iter()
            .map(|(cap, weight)| {
                (
                    cap.sku.name.as_str(),
                    *weight,
                    cap.sku.average_power(),
                    cap.sku.embodied(),
                )
            })
            .collect();
        for i in 0..years {
            let year = self.start_year + i as u16;
            let it_power = average_power * servers;
            let energy = it_power * year_span * self.pue;

            let mut portfolio = PpaPortfolio::new(self.grid);
            let coverage = self.coverage(i);
            portfolio.contract(self.renewable_source, energy * coverage);
            let location = portfolio.location_carbon(energy);
            let market = portfolio.market_carbon(energy);

            let new_servers = (servers - prev_servers).max(0.0);
            let embodied = embodied_per_server * new_servers;
            // Composition breakdown: each slice's energy via the shared
            // heterogeneity slice math; market carbon apportioned by energy
            // share (PPAs cover the fleet, not individual SKUs).
            let per_sku = sku_table
                .iter()
                .map(|&(sku, weight, power, sku_embodied)| {
                    let slice_servers = servers * weight;
                    let sku_energy = power * slice_servers * year_span * self.pue;
                    // A zero-server facility year has zero total energy;
                    // its slices carry zero carbon, not 0/0 = NaN.
                    let share = if energy.is_zero() {
                        0.0
                    } else {
                        sku_energy / energy
                    };
                    SkuYear {
                        sku: sku.to_string(),
                        servers: slice_servers,
                        energy: sku_energy,
                        market_carbon: market * share,
                        embodied_carbon: sku_embodied * (new_servers * weight),
                    }
                })
                .collect();
            out.push(FacilityYear {
                year,
                servers: servers.round() as u64,
                energy,
                location_carbon: location,
                market_carbon: market,
                capex_carbon: embodied + construction,
                per_sku,
            });
            prev_servers = servers;
            servers *= self.server_growth;
        }
        out
    }
}

/// Builder for [`Facility`].
#[derive(Debug, Clone)]
pub struct FacilityBuilder {
    facility: Facility,
}

impl FacilityBuilder {
    /// Replaces the fleet composition (default: a pure fleet of the SKU
    /// passed to [`Facility::builder`]).
    pub fn mix(&mut self, mix: FleetMix) -> &mut Self {
        self.facility.mix = mix;
        self
    }

    /// Sets the initial server count (default 10,000).
    pub fn initial_servers(&mut self, servers: u64) -> &mut Self {
        self.facility.initial_servers = servers;
        self
    }

    /// Sets the yearly fleet growth factor (default 1.25).
    ///
    /// # Panics
    ///
    /// Panics when the factor is not positive.
    pub fn server_growth(&mut self, factor: f64) -> &mut Self {
        assert!(factor > 0.0, "growth factor must be positive");
        self.facility.server_growth = factor;
        self
    }

    /// Sets the power usage effectiveness (default 1.12, warehouse-scale
    /// best practice).
    ///
    /// # Panics
    ///
    /// Panics when PUE < 1.
    pub fn pue(&mut self, pue: f64) -> &mut Self {
        assert!(pue >= 1.0, "PUE is a multiplier >= 1");
        self.facility.pue = pue;
        self
    }

    /// Sets the total construction embodied carbon (default 100 kt),
    /// amortized over the building amortization window.
    pub fn construction(&mut self, carbon: CarbonMass) -> &mut Self {
        self.facility.construction = carbon;
        self
    }

    /// Sets the building amortization window in years (default 20): the
    /// construction carbon is spread evenly over this many years of capex.
    ///
    /// # Panics
    ///
    /// Panics when the window is not a positive finite number of years.
    pub fn construction_amortization_years(&mut self, years: f64) -> &mut Self {
        assert!(
            years.is_finite() && years > 0.0,
            "amortization window must be a positive number of years"
        );
        self.facility.construction_amortization_years = years;
        self
    }

    /// Sets the location grid (default: US average).
    pub fn grid(&mut self, grid: cc_units::CarbonIntensity) -> &mut Self {
        self.facility.grid = grid;
        self
    }

    /// Sets the renewable coverage ramp: fraction of annual energy covered
    /// by PPAs in each simulated year (last value holds thereafter).
    pub fn renewable_ramp(&mut self, ramp: Vec<f64>) -> &mut Self {
        self.facility.renewable_ramp = ramp;
        self
    }

    /// Sets the contracted renewable source (default wind).
    pub fn renewable_source(&mut self, source: cc_data::energy_sources::EnergySource) -> &mut Self {
        self.facility.renewable_source = source;
        self
    }

    /// Finishes the build.
    #[must_use]
    pub fn build(&self) -> Facility {
        self.facility.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facility() -> Facility {
        Facility::builder("test", 2013, ServerConfig::web())
            .initial_servers(20_000)
            .server_growth(1.3)
            .renewable_ramp(vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0])
            .build()
    }

    #[test]
    fn energy_grows_with_fleet() {
        let years = facility().simulate(6);
        for pair in years.windows(2) {
            assert!(pair[1].energy > pair[0].energy);
            assert!(pair[1].servers > pair[0].servers);
        }
    }

    #[test]
    fn market_carbon_decouples_from_energy() {
        // The Fig 2 (left) shape: energy up, operational carbon down.
        let years = facility().simulate(6);
        let first = &years[0];
        let last = &years[5];
        assert!(last.energy > first.energy * 2.0);
        assert!(last.market_carbon < first.market_carbon);
        // Location-based keeps rising — the gap is renewable procurement.
        assert!(last.location_carbon > first.location_carbon);
    }

    #[test]
    fn full_coverage_is_near_zero_operational() {
        let years = facility().simulate(6);
        let last = &years[5];
        // Wind at 11 g/kWh vs grid 380: >30x below location-based.
        assert!(last.location_carbon / last.market_carbon > 30.0);
    }

    #[test]
    fn capex_includes_embodied_and_construction() {
        let years = facility().simulate(2);
        // Year 0 books the whole initial fleet.
        let y0_embodied = ServerConfig::web().embodied() * 20_000.0;
        let construction = CarbonMass::from_kt(100.0) / 20.0;
        assert!((years[0].capex_carbon / (y0_embodied + construction) - 1.0).abs() < 1e-9);
        // Year 1 books only the delta.
        assert!(years[1].capex_carbon < years[0].capex_carbon);
    }

    #[test]
    fn amortization_window_scales_the_construction_term() {
        let short = Facility::builder("short", 2013, ServerConfig::web())
            .initial_servers(20_000)
            .construction_amortization_years(10.0)
            .build()
            .simulate(1);
        let default = Facility::builder("default", 2013, ServerConfig::web())
            .initial_servers(20_000)
            .build()
            .simulate(1);
        // Halving the window doubles the per-year construction charge.
        let delta = short[0].capex_carbon - default[0].capex_carbon;
        let expect = CarbonMass::from_kt(100.0) / 10.0 - CarbonMass::from_kt(100.0) / 20.0;
        assert!((delta / expect - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive number of years")]
    fn zero_amortization_window_is_rejected() {
        let _ = Facility::builder("bad", 2013, ServerConfig::web())
            .construction_amortization_years(0.0);
    }

    #[test]
    fn inventory_view() {
        let years = facility().simulate(6);
        let inv = years[5].inventory();
        assert!(
            inv.capex_share(cc_ghg::Scope2Method::MarketBased)
                .as_percent()
                > 50.0
        );
    }

    #[test]
    fn no_ramp_means_grid_carbon() {
        let mut f = Facility::builder("brown", 2013, ServerConfig::web()).build();
        let years = f.simulate(2);
        assert_eq!(years[0].location_carbon, years[0].market_carbon);
    }

    #[test]
    #[should_panic(expected = "PUE")]
    fn rejects_sub_unity_pue() {
        Facility::builder("bad", 2013, ServerConfig::web()).pue(0.9);
    }

    #[test]
    fn pure_fleet_breakdown_mirrors_the_totals() {
        let years = facility().simulate(3);
        for y in &years {
            assert_eq!(y.per_sku.len(), 1);
            let slice = &y.per_sku[0];
            assert_eq!(slice.sku, "web");
            assert_eq!(slice.energy, y.energy);
            assert_eq!(slice.market_carbon, y.market_carbon);
        }
    }

    #[test]
    fn mixed_fleet_splits_energy_and_embodied_by_weight() {
        let mix = crate::fleet::FleetMix::weighted(vec![
            (ServerConfig::web(), 0.7),
            (ServerConfig::ai_training(), 0.3),
        ]);
        let mut f = Facility::builder("mixed", 2013, ServerConfig::web())
            .initial_servers(10_000)
            .mix(mix)
            .build();
        let years = f.simulate(2);
        let y0 = &years[0];
        assert_eq!(y0.per_sku.len(), 2);
        let (web, ai) = (&y0.per_sku[0], &y0.per_sku[1]);
        assert_eq!(web.servers, 7_000.0);
        assert_eq!(ai.servers, 3_000.0);
        // 3,000 AI boxes at 1.5 kW out-draw 7,000 web boxes at 250 W.
        assert!(ai.energy > web.energy * 2.0);
        // The slices partition the totals.
        assert!(((web.energy + ai.energy) / y0.energy - 1.0).abs() < 1e-12);
        assert!(((web.market_carbon + ai.market_carbon) / y0.market_carbon - 1.0).abs() < 1e-12);
        // Per-SKU embodied sums to the capex term minus construction.
        let construction = CarbonMass::from_kt(100.0) / 20.0;
        let embodied_sum = web.embodied_carbon + ai.embodied_carbon;
        assert!(
            ((embodied_sum + construction) / y0.capex_carbon - 1.0).abs() < 1e-12,
            "embodied breakdown must reconcile with capex"
        );
        // A mixed fleet is strictly heavier than the pure web fleet.
        let mut pure = Facility::builder("pure", 2013, ServerConfig::web())
            .initial_servers(10_000)
            .build();
        let pure_years = pure.simulate(2);
        assert!(y0.energy > pure_years[0].energy);
        assert!(y0.capex_carbon > pure_years[0].capex_carbon);
    }
}
