//! Property-based tests for the quantity algebra.

use cc_units::prelude::*;
use proptest::prelude::*;

/// Finite, moderately sized floats so that products stay finite.
fn val() -> impl Strategy<Value = f64> {
    -1e12..1e12f64
}

fn pos() -> impl Strategy<Value = f64> {
    1e-6..1e9f64
}

proptest! {
    #[test]
    fn energy_add_commutes(a in val(), b in val()) {
        let (x, y) = (Energy::from_joules(a), Energy::from_joules(b));
        prop_assert_eq!(x + y, y + x);
    }

    #[test]
    fn energy_add_zero_is_identity(a in val()) {
        let x = Energy::from_joules(a);
        prop_assert_eq!(x + Energy::ZERO, x);
        prop_assert_eq!(x - Energy::ZERO, x);
    }

    #[test]
    fn energy_sub_is_add_neg(a in val(), b in val()) {
        let (x, y) = (Energy::from_joules(a), Energy::from_joules(b));
        prop_assert_eq!(x - y, x + (-y));
    }

    #[test]
    fn kwh_round_trips(a in val()) {
        let e = Energy::from_kwh(a);
        prop_assert!((e.as_kwh() - a).abs() <= a.abs() * 1e-12 + 1e-12);
    }

    #[test]
    fn carbon_mass_unit_ladder(a in pos()) {
        let m = CarbonMass::from_mt(a);
        prop_assert!((m.as_kt() - a * 1e3).abs() <= m.as_kt().abs() * 1e-12);
        prop_assert!((m.as_tonnes() - a * 1e6).abs() <= m.as_tonnes().abs() * 1e-12);
    }

    #[test]
    fn power_time_energy_inverse(p in pos(), t in pos()) {
        let power = Power::from_watts(p);
        let time = TimeSpan::from_seconds(t);
        let energy = power * time;
        let back_p = energy / time;
        let back_t = energy / power;
        prop_assert!((back_p.as_watts() - p).abs() <= p * 1e-9);
        prop_assert!((back_t.as_seconds() - t).abs() <= t * 1e-9);
    }

    #[test]
    fn scope2_conversion_inverse(kwh in pos(), g in pos()) {
        let e = Energy::from_kwh(kwh);
        let i = CarbonIntensity::from_g_per_kwh(g);
        let carbon = e * i;
        let back_e = carbon / i;
        let back_i = carbon / e;
        prop_assert!((back_e.as_kwh() - kwh).abs() <= kwh * 1e-9);
        prop_assert!((back_i.as_g_per_kwh() - g).abs() <= g * 1e-9);
    }

    #[test]
    fn like_division_is_scalar_ratio(a in pos(), k in pos()) {
        let x = CarbonMass::from_grams(a);
        let y = x * k;
        prop_assert!((y / x - k).abs() <= k * 1e-9);
    }

    #[test]
    fn min_max_bracket(a in val(), b in val()) {
        let (x, y) = (TimeSpan::from_seconds(a), TimeSpan::from_seconds(b));
        prop_assert!(x.min(y) <= x.max(y));
        let lo = x.min(y);
        prop_assert!(lo == x || lo == y);
    }

    #[test]
    fn lerp_endpoints(a in val(), b in val()) {
        let (x, y) = (Power::from_watts(a), Power::from_watts(b));
        prop_assert_eq!(x.lerp(y, 0.0), x);
        // t = 1 is exact only up to rounding of x + (b - a).
        let tol = (a.abs() + b.abs()) * 1e-12 + 1e-12;
        prop_assert!((x.lerp(y, 1.0).as_watts() - b).abs() <= tol);
    }

    #[test]
    fn ratio_complement_involutive(p in 0.0..1.0f64) {
        let r = Ratio::from_fraction(p);
        prop_assert!((r.complement().complement().as_fraction() - p).abs() < 1e-12);
        prop_assert!(r.is_share());
    }

    #[test]
    fn blend_is_bounded(lo in 1.0..100.0f64, hi in 100.0..1000.0f64, s in 0.0..1.0f64) {
        let a = CarbonIntensity::from_g_per_kwh(lo);
        let b = CarbonIntensity::from_g_per_kwh(hi);
        let mix = a.blend(b, s);
        prop_assert!(mix >= a && mix <= b);
    }

    #[test]
    fn sum_matches_fold(values in proptest::collection::vec(-1e9..1e9f64, 0..50)) {
        let total: Energy = values.iter().map(|&v| Energy::from_joules(v)).sum();
        let folded = values.iter().fold(Energy::ZERO, |acc, &v| acc + Energy::from_joules(v));
        prop_assert_eq!(total, folded);
    }

    #[test]
    fn validated_accepts_all_finite(a in val()) {
        prop_assert!(Energy::from_joules(a).validated().is_ok());
    }
}
