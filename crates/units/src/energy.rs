//! The [`Energy`] quantity.

quantity! {
    /// An amount of energy, stored canonically in joules.
    ///
    /// Energy is the quantity that links operational activity to carbon:
    /// multiplying an [`Energy`](crate::Energy) by a
    /// [`CarbonIntensity`](crate::CarbonIntensity) yields the
    /// [`CarbonMass`](crate::CarbonMass) emitted to generate it (the paper's
    /// Scope 2 / opex pathway).
    ///
    /// ```
    /// use cc_units::Energy;
    ///
    /// let e = Energy::from_kwh(1.0);
    /// assert_eq!(e.as_joules(), 3.6e6);
    /// assert_eq!(Energy::from_twh(1.0).as_gwh(), 1_000.0);
    /// ```
    Energy, joules, "Energy"
}

/// Joules per kilowatt-hour.
pub(crate) const JOULES_PER_KWH: f64 = 3.6e6;

impl Energy {
    /// Creates an energy from joules.
    #[must_use]
    pub fn from_joules(joules: f64) -> Self {
        Self { joules }
    }

    /// Creates an energy from watt-hours.
    #[must_use]
    pub fn from_wh(wh: f64) -> Self {
        Self {
            joules: wh * 3_600.0,
        }
    }

    /// Creates an energy from kilowatt-hours.
    #[must_use]
    pub fn from_kwh(kwh: f64) -> Self {
        Self {
            joules: kwh * JOULES_PER_KWH,
        }
    }

    /// Creates an energy from megawatt-hours.
    #[must_use]
    pub fn from_mwh(mwh: f64) -> Self {
        Self::from_kwh(mwh * 1e3)
    }

    /// Creates an energy from gigawatt-hours.
    #[must_use]
    pub fn from_gwh(gwh: f64) -> Self {
        Self::from_kwh(gwh * 1e6)
    }

    /// Creates an energy from terawatt-hours (the unit of Fig 1's global
    /// ICT-demand projections).
    #[must_use]
    pub fn from_twh(twh: f64) -> Self {
        Self::from_kwh(twh * 1e9)
    }

    /// Energy in joules.
    #[must_use]
    pub fn as_joules(self) -> f64 {
        self.joules
    }

    /// Energy in watt-hours.
    #[must_use]
    pub fn as_wh(self) -> f64 {
        self.joules / 3_600.0
    }

    /// Energy in kilowatt-hours.
    #[must_use]
    pub fn as_kwh(self) -> f64 {
        self.joules / JOULES_PER_KWH
    }

    /// Energy in megawatt-hours.
    #[must_use]
    pub fn as_mwh(self) -> f64 {
        self.as_kwh() / 1e3
    }

    /// Energy in gigawatt-hours.
    #[must_use]
    pub fn as_gwh(self) -> f64 {
        self.as_kwh() / 1e6
    }

    /// Energy in terawatt-hours.
    #[must_use]
    pub fn as_twh(self) -> f64 {
        self.as_kwh() / 1e9
    }
}

/// `Energy / TimeSpan = Power` (average power over the span).
impl core::ops::Div<crate::TimeSpan> for Energy {
    type Output = crate::Power;

    fn div(self, rhs: crate::TimeSpan) -> crate::Power {
        crate::Power::from_watts(self.joules / rhs.as_seconds())
    }
}

/// `Energy / Power = TimeSpan` (how long the power level can be sustained).
impl core::ops::Div<crate::Power> for Energy {
    type Output = crate::TimeSpan;

    fn div(self, rhs: crate::Power) -> crate::TimeSpan {
        crate::TimeSpan::from_seconds(self.joules / rhs.as_watts())
    }
}

/// `Energy * CarbonIntensity = CarbonMass` (the Scope 2 conversion).
impl core::ops::Mul<crate::CarbonIntensity> for Energy {
    type Output = crate::CarbonMass;

    fn mul(self, rhs: crate::CarbonIntensity) -> crate::CarbonMass {
        crate::CarbonMass::from_grams(self.as_kwh() * rhs.as_g_per_kwh())
    }
}

impl core::fmt::Display for Energy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let kwh = self.as_kwh().abs();
        if kwh >= 1e9 {
            write!(f, "{:.3} TWh", self.as_twh())
        } else if kwh >= 1e6 {
            write!(f, "{:.3} GWh", self.as_gwh())
        } else if kwh >= 1e3 {
            write!(f, "{:.3} MWh", self.as_mwh())
        } else if kwh >= 1.0 {
            write!(f, "{:.3} kWh", self.as_kwh())
        } else {
            write!(f, "{:.3} J", self.as_joules())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CarbonIntensity, Power, TimeSpan};

    #[test]
    fn unit_conversions_round_trip() {
        let e = Energy::from_kwh(7.7e9); // 3 nm fab annual demand (paper §II)
        assert!((e.as_twh() - 7.7).abs() < 1e-9);
        assert!((Energy::from_twh(7.7).as_kwh() - 7.7e9).abs() < 1.0);
        assert_eq!(Energy::from_wh(1_000.0), Energy::from_kwh(1.0));
        assert_eq!(Energy::from_mwh(1.0), Energy::from_kwh(1_000.0));
        assert_eq!(Energy::from_gwh(1.0), Energy::from_mwh(1_000.0));
    }

    #[test]
    fn energy_power_time_algebra() {
        let p = Power::from_watts(730.0); // Mac Pro 2 TDP, Table IV
        let t = TimeSpan::from_hours(10.0);
        let e = p * t;
        assert!((e.as_kwh() - 7.3).abs() < 1e-9);
        assert!((e / t).as_watts() - 730.0 < 1e-9);
        assert!(((e / p).as_hours() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn scope2_conversion() {
        // 1 kWh on the Indian grid (725 g/kWh, Table III) emits 725 g CO2e.
        let carbon = Energy::from_kwh(1.0) * CarbonIntensity::from_g_per_kwh(725.0);
        assert!((carbon.as_grams() - 725.0).abs() < 1e-9);
    }

    #[test]
    fn sum_and_scaling() {
        let total: Energy = [1.0, 2.0, 3.0].iter().map(|&k| Energy::from_kwh(k)).sum();
        assert!((total.as_kwh() - 6.0).abs() < 1e-12);
        assert_eq!((total * 2.0).as_kwh(), 12.0);
        assert_eq!((total / 2.0).as_kwh(), 3.0);
        assert!((total / Energy::from_kwh(3.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_scales() {
        assert_eq!(Energy::from_twh(1.5).to_string(), "1.500 TWh");
        assert_eq!(Energy::from_gwh(2.0).to_string(), "2.000 GWh");
        assert_eq!(Energy::from_mwh(3.0).to_string(), "3.000 MWh");
        assert_eq!(Energy::from_kwh(4.0).to_string(), "4.000 kWh");
        assert_eq!(Energy::from_joules(5.0).to_string(), "5.000 J");
    }

    #[test]
    fn negative_energy_behaves() {
        let e = -Energy::from_kwh(1.0);
        assert!(e < Energy::ZERO);
        assert_eq!(e.abs(), Energy::from_kwh(1.0));
    }
}
