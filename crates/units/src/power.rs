//! The [`Power`] quantity.

quantity! {
    /// An instantaneous rate of energy use, stored canonically in watts.
    ///
    /// ```
    /// use cc_units::{Power, TimeSpan};
    ///
    /// // The paper's Monsoon measurements are device power over an inference.
    /// let p = Power::from_watts(4.2);
    /// let e = p * TimeSpan::from_millis(6.0);
    /// assert!((e.as_joules() - 0.0252).abs() < 1e-12);
    /// ```
    Power, watts, "Power"
}

impl Power {
    /// Creates a power from watts.
    #[must_use]
    pub fn from_watts(watts: f64) -> Self {
        Self { watts }
    }

    /// Creates a power from milliwatts.
    #[must_use]
    pub fn from_milliwatts(mw: f64) -> Self {
        Self { watts: mw / 1e3 }
    }

    /// Creates a power from kilowatts.
    #[must_use]
    pub fn from_kilowatts(kw: f64) -> Self {
        Self { watts: kw * 1e3 }
    }

    /// Creates a power from megawatts (data-center scale).
    #[must_use]
    pub fn from_megawatts(mw: f64) -> Self {
        Self { watts: mw * 1e6 }
    }

    /// Power in watts.
    #[must_use]
    pub fn as_watts(self) -> f64 {
        self.watts
    }

    /// Power in milliwatts.
    #[must_use]
    pub fn as_milliwatts(self) -> f64 {
        self.watts * 1e3
    }

    /// Power in kilowatts.
    #[must_use]
    pub fn as_kilowatts(self) -> f64 {
        self.watts / 1e3
    }

    /// Power in megawatts.
    #[must_use]
    pub fn as_megawatts(self) -> f64 {
        self.watts / 1e6
    }
}

/// `Power * TimeSpan = Energy`.
impl core::ops::Mul<crate::TimeSpan> for Power {
    type Output = crate::Energy;

    fn mul(self, rhs: crate::TimeSpan) -> crate::Energy {
        crate::Energy::from_joules(self.watts * rhs.as_seconds())
    }
}

/// `TimeSpan * Power = Energy` (commutes).
impl core::ops::Mul<Power> for crate::TimeSpan {
    type Output = crate::Energy;

    fn mul(self, rhs: Power) -> crate::Energy {
        rhs * self
    }
}

impl core::fmt::Display for Power {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let w = self.watts.abs();
        if w >= 1e6 {
            write!(f, "{:.3} MW", self.as_megawatts())
        } else if w >= 1e3 {
            write!(f, "{:.3} kW", self.as_kilowatts())
        } else if w >= 1.0 {
            write!(f, "{:.3} W", self.watts)
        } else {
            write!(f, "{:.3} mW", self.as_milliwatts())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TimeSpan;

    #[test]
    fn conversions() {
        assert_eq!(Power::from_kilowatts(1.0).as_watts(), 1_000.0);
        assert_eq!(Power::from_megawatts(1.0).as_kilowatts(), 1_000.0);
        assert_eq!(Power::from_milliwatts(1_500.0).as_watts(), 1.5);
    }

    #[test]
    fn power_times_time_commutes() {
        let p = Power::from_watts(310.0);
        let t = TimeSpan::from_hours(2.0);
        assert_eq!(p * t, t * p);
        assert!(((p * t).as_kwh() - 0.62).abs() < 1e-12);
    }

    #[test]
    fn display_scales() {
        assert_eq!(Power::from_megawatts(30.0).to_string(), "30.000 MW");
        assert_eq!(Power::from_kilowatts(1.2).to_string(), "1.200 kW");
        assert_eq!(Power::from_watts(4.5).to_string(), "4.500 W");
        assert_eq!(Power::from_milliwatts(250.0).to_string(), "250.000 mW");
    }
}
