//! The [`CarbonIntensity`] quantity.

quantity! {
    /// Carbon emitted per unit of energy generated, stored canonically in
    /// grams of CO₂e per kilowatt-hour.
    ///
    /// This is the quantity that distinguishes "brown" from "green" energy in
    /// the paper: coal emits 820 g CO₂e/kWh while wind emits 11 g CO₂e/kWh —
    /// "up to 30× fewer GHG emissions" (§II, Table II). It is the single knob
    /// turned in Figs 13 and 14.
    ///
    /// ```
    /// use cc_units::CarbonIntensity;
    ///
    /// let coal = CarbonIntensity::from_g_per_kwh(820.0);
    /// let wind = CarbonIntensity::from_g_per_kwh(11.0);
    /// assert!((coal / wind - 74.5).abs() < 0.1);
    /// ```
    CarbonIntensity, g_per_kwh, "CarbonIntensity"
}

impl CarbonIntensity {
    /// Creates an intensity from grams of CO₂e per kilowatt-hour.
    #[must_use]
    pub fn from_g_per_kwh(g_per_kwh: f64) -> Self {
        Self { g_per_kwh }
    }

    /// Creates an intensity from kilograms of CO₂e per megawatt-hour
    /// (numerically identical to g/kWh).
    #[must_use]
    pub fn from_kg_per_mwh(kg_per_mwh: f64) -> Self {
        Self {
            g_per_kwh: kg_per_mwh,
        }
    }

    /// Intensity in grams of CO₂e per kilowatt-hour.
    #[must_use]
    pub fn as_g_per_kwh(self) -> f64 {
        self.g_per_kwh
    }

    /// Intensity in metric tons of CO₂e per gigawatt-hour.
    #[must_use]
    pub fn as_t_per_gwh(self) -> f64 {
        self.g_per_kwh
    }

    /// Blends two intensities with the given share of `self`
    /// (`share` in `[0, 1]`): the effective intensity of an energy mix.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `share` is outside `[0, 1]`.
    #[must_use]
    pub fn blend(self, other: Self, share_of_self: f64) -> Self {
        debug_assert!(
            (0.0..=1.0).contains(&share_of_self),
            "share must be in [0, 1]"
        );
        Self {
            g_per_kwh: self.g_per_kwh * share_of_self + other.g_per_kwh * (1.0 - share_of_self),
        }
    }
}

/// `CarbonIntensity * Energy = CarbonMass` (commutes with the `Energy` impl).
impl core::ops::Mul<crate::Energy> for CarbonIntensity {
    type Output = crate::CarbonMass;

    fn mul(self, rhs: crate::Energy) -> crate::CarbonMass {
        rhs * self
    }
}

impl core::fmt::Display for CarbonIntensity {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.1} g CO2e/kWh", self.g_per_kwh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Energy;

    #[test]
    fn multiplication_commutes() {
        let e = Energy::from_kwh(10.0);
        let i = CarbonIntensity::from_g_per_kwh(41.0); // solar, Table II
        assert_eq!(e * i, i * e);
        assert!(((e * i).as_grams() - 410.0).abs() < 1e-9);
    }

    #[test]
    fn blending_energy_mixes() {
        // 80% wind (11) + 20% gas (490) = 106.8 g/kWh.
        let wind = CarbonIntensity::from_g_per_kwh(11.0);
        let gas = CarbonIntensity::from_g_per_kwh(490.0);
        let mix = wind.blend(gas, 0.8);
        assert!((mix.as_g_per_kwh() - 106.8).abs() < 1e-9);
        // Degenerate blends return the endpoints.
        assert_eq!(wind.blend(gas, 1.0), wind);
        assert_eq!(wind.blend(gas, 0.0), gas);
    }

    #[test]
    fn kg_per_mwh_alias() {
        assert_eq!(
            CarbonIntensity::from_kg_per_mwh(380.0),
            CarbonIntensity::from_g_per_kwh(380.0)
        );
    }

    #[test]
    fn display() {
        assert_eq!(
            CarbonIntensity::from_g_per_kwh(380.0).to_string(),
            "380.0 g CO2e/kWh"
        );
    }
}
