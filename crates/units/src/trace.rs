//! Time-resolved carbon intensity: a 24-hour grid trace.

use crate::CarbonIntensity;

/// A day of hourly grid carbon intensity, the time-resolved counterpart of a
/// single [`CarbonIntensity`] scalar.
///
/// Traces are always stored on a canonical 24-slot hourly grid (slot `h`
/// covers `[h:00, h+1:00)` local time). Inputs sampled at a different
/// resolution are resampled on construction by [`Self::from_hourly`] with
/// linear interpolation, so downstream consumers (the carbon-aware scheduler,
/// experiments, artifacts) never deal with variable-resolution data.
///
/// ```
/// use cc_units::IntensityTrace;
///
/// let flat = IntensityTrace::flat(380.0);
/// assert_eq!(flat.g_per_kwh(13), 380.0);
/// let solar = IntensityTrace::solar_day(380.0, 120.0);
/// assert!(solar.g_per_kwh(13) < solar.g_per_kwh(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntensityTrace {
    hours: [f64; 24],
}

impl IntensityTrace {
    /// Number of slots in the canonical grid.
    pub const HOURS: usize = 24;

    /// Builds a trace from raw hourly values (g CO₂e/kWh).
    #[must_use]
    pub fn from_raw(hours: [f64; 24]) -> Self {
        Self { hours }
    }

    /// A constant trace: every hour at `g_per_kwh`.
    #[must_use]
    pub fn flat(g_per_kwh: f64) -> Self {
        Self {
            hours: [g_per_kwh; 24],
        }
    }

    /// Builds a trace from `samples.len()` evenly spaced samples over the
    /// day, resampling onto the 24-hour grid with linear interpolation.
    ///
    /// The samples describe a periodic day: sample `i` sits at hour
    /// `i * 24 / n`, and interpolation past the last sample wraps to the
    /// first. Exactly 24 samples pass through unchanged. Returns `None` for
    /// an empty slice.
    #[must_use]
    pub fn from_hourly(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        if n == 24 {
            let mut hours = [0.0; 24];
            hours.copy_from_slice(samples);
            return Some(Self { hours });
        }
        let mut hours = [0.0; 24];
        #[allow(clippy::cast_precision_loss)]
        let step = n as f64 / 24.0;
        for (h, slot) in hours.iter_mut().enumerate() {
            #[allow(clippy::cast_precision_loss)]
            let pos = h as f64 * step;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let lo = pos.floor() as usize % n;
            let hi = (lo + 1) % n;
            #[allow(clippy::cast_precision_loss)]
            let frac = pos - pos.floor();
            *slot = samples[lo] + (samples[hi] - samples[lo]) * frac;
        }
        Some(Self { hours })
    }

    /// A parametric solar-heavy day: `night` g/kWh off-peak with a cosine
    /// dip to `noon` g/kWh at 13:00, daylight spanning hours 7–18.
    ///
    /// `solar_day(380.0, 120.0)` reproduces the workspace's historical
    /// hardcoded solar grid shape exactly.
    #[must_use]
    pub fn solar_day(night: f64, noon: f64) -> Self {
        let mut hours = [night; 24];
        for (h, slot) in hours.iter_mut().enumerate().take(19).skip(7) {
            #[allow(clippy::cast_precision_loss)]
            let x = (h as f64 - 13.0) / 6.0;
            let dip = 0.5 * (1.0 + (core::f64::consts::PI * x).cos());
            *slot = night - (night - noon) * dip;
        }
        Self { hours }
    }

    /// The intensity at hour `h` (wrapping past 23), as a raw g/kWh value.
    #[must_use]
    pub fn g_per_kwh(&self, h: usize) -> f64 {
        self.hours[h % 24]
    }

    /// The intensity at hour `h` (wrapping past 23), as a typed quantity.
    #[must_use]
    pub fn at(&self, h: usize) -> CarbonIntensity {
        CarbonIntensity::from_g_per_kwh(self.g_per_kwh(h))
    }

    /// The full hourly grid.
    #[must_use]
    pub fn hours(&self) -> &[f64; 24] {
        &self.hours
    }

    /// Simple (unweighted) daily mean intensity in g/kWh.
    #[must_use]
    pub fn daily_mean(&self) -> f64 {
        self.hours.iter().sum::<f64>() / 24.0
    }

    /// `true` when every hour is finite and non-negative — the validity
    /// requirement scenario validation enforces for region traces.
    #[must_use]
    pub fn is_physical(&self) -> bool {
        self.hours.iter().all(|v| v.is_finite() && *v >= 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_and_raw_round_trip() {
        let t = IntensityTrace::flat(42.0);
        assert_eq!(t.hours(), &[42.0; 24]);
        assert_eq!(t.daily_mean(), 42.0);
        assert_eq!(IntensityTrace::from_raw([42.0; 24]), t);
        assert_eq!(t.at(3).as_g_per_kwh(), 42.0);
        // Hour indexing wraps.
        assert_eq!(t.g_per_kwh(27), t.g_per_kwh(3));
    }

    #[test]
    fn solar_day_matches_the_historical_shape() {
        // The pre-trace scheduler hardcoded 380 off-peak with a cosine dip
        // of depth 260 centered on 13:00 over hours 7..19.
        let t = IntensityTrace::solar_day(380.0, 120.0);
        for h in 0..24 {
            let expect = if (7..19).contains(&h) {
                #[allow(clippy::cast_precision_loss)]
                let x = (h as f64 - 13.0) / 6.0;
                380.0 - 260.0 * 0.5 * (1.0 + (core::f64::consts::PI * x).cos())
            } else {
                380.0
            };
            assert_eq!(t.g_per_kwh(h), expect, "hour {h}");
        }
        assert_eq!(t.g_per_kwh(13), 120.0);
    }

    #[test]
    fn from_hourly_identity_at_native_resolution() {
        let mut samples = [0.0; 24];
        for (i, s) in samples.iter_mut().enumerate() {
            *s = i as f64 * 10.0;
        }
        let t = IntensityTrace::from_hourly(&samples).unwrap();
        assert_eq!(t.hours(), &samples);
    }

    #[test]
    fn from_hourly_resamples_coarse_and_fine_inputs() {
        // Two samples: 100 at 00:00, 300 at 12:00, wrapping back to 100.
        let t = IntensityTrace::from_hourly(&[100.0, 300.0]).unwrap();
        assert_eq!(t.g_per_kwh(0), 100.0);
        assert_eq!(t.g_per_kwh(12), 300.0);
        assert!((t.g_per_kwh(6) - 200.0).abs() < 1e-9);
        // Interpolation past the last sample wraps toward the first.
        assert!((t.g_per_kwh(18) - 200.0).abs() < 1e-9);

        // 48 half-hourly samples of a flat profile stay flat.
        let fine = IntensityTrace::from_hourly(&[55.0; 48]).unwrap();
        assert_eq!(fine.hours(), &[55.0; 24]);

        assert!(IntensityTrace::from_hourly(&[]).is_none());
    }

    #[test]
    fn physicality_check() {
        assert!(IntensityTrace::flat(0.0).is_physical());
        assert!(!IntensityTrace::flat(-1.0).is_physical());
        assert!(!IntensityTrace::flat(f64::NAN).is_physical());
    }
}
