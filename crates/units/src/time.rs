//! The [`TimeSpan`] quantity.

/// Seconds in a (mean Julian) year. Device lifetimes in the paper are quoted
/// in years ("three to four years"), so the year must be a first-class unit.
pub(crate) const SECONDS_PER_YEAR: f64 = 365.25 * 24.0 * 3_600.0;

quantity! {
    /// A duration, stored canonically in seconds.
    ///
    /// ```
    /// use cc_units::TimeSpan;
    ///
    /// let lifetime = TimeSpan::from_years(3.0); // typical smartphone lifetime
    /// assert!((lifetime.as_days() - 1_095.75).abs() < 1e-9);
    /// ```
    TimeSpan, seconds, "TimeSpan"
}

impl TimeSpan {
    /// Creates a span from seconds.
    #[must_use]
    pub fn from_seconds(seconds: f64) -> Self {
        Self { seconds }
    }

    /// Creates a span from milliseconds (inference latencies).
    #[must_use]
    pub fn from_millis(ms: f64) -> Self {
        Self { seconds: ms / 1e3 }
    }

    /// Creates a span from microseconds.
    #[must_use]
    pub fn from_micros(us: f64) -> Self {
        Self { seconds: us / 1e6 }
    }

    /// Creates a span from hours.
    #[must_use]
    pub fn from_hours(hours: f64) -> Self {
        Self {
            seconds: hours * 3_600.0,
        }
    }

    /// Creates a span from days.
    #[must_use]
    pub fn from_days(days: f64) -> Self {
        Self {
            seconds: days * 86_400.0,
        }
    }

    /// Creates a span from months (1/12 of a year; energy-payback times in
    /// Table II are quoted in months).
    #[must_use]
    pub fn from_months(months: f64) -> Self {
        Self {
            seconds: months * SECONDS_PER_YEAR / 12.0,
        }
    }

    /// Creates a span from years.
    #[must_use]
    pub fn from_years(years: f64) -> Self {
        Self {
            seconds: years * SECONDS_PER_YEAR,
        }
    }

    /// The span in seconds.
    #[must_use]
    pub fn as_seconds(self) -> f64 {
        self.seconds
    }

    /// The span in milliseconds.
    #[must_use]
    pub fn as_millis(self) -> f64 {
        self.seconds * 1e3
    }

    /// The span in hours.
    #[must_use]
    pub fn as_hours(self) -> f64 {
        self.seconds / 3_600.0
    }

    /// The span in days.
    #[must_use]
    pub fn as_days(self) -> f64 {
        self.seconds / 86_400.0
    }

    /// The span in months.
    #[must_use]
    pub fn as_months(self) -> f64 {
        self.seconds * 12.0 / SECONDS_PER_YEAR
    }

    /// The span in years.
    #[must_use]
    pub fn as_years(self) -> f64 {
        self.seconds / SECONDS_PER_YEAR
    }
}

impl core::fmt::Display for TimeSpan {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = self.seconds.abs();
        if s >= SECONDS_PER_YEAR {
            write!(f, "{:.2} yr", self.as_years())
        } else if s >= 86_400.0 {
            write!(f, "{:.1} d", self.as_days())
        } else if s >= 3_600.0 {
            write!(f, "{:.2} h", self.as_hours())
        } else if s >= 1.0 {
            write!(f, "{:.3} s", self.seconds)
        } else {
            write!(f, "{:.3} ms", self.as_millis())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert!((TimeSpan::from_days(1_100.0).as_years() - 3.011_6).abs() < 1e-3);
        assert_eq!(TimeSpan::from_hours(24.0), TimeSpan::from_days(1.0));
        assert_eq!(TimeSpan::from_months(12.0), TimeSpan::from_years(1.0));
        assert!((TimeSpan::from_millis(6.0).as_seconds() - 0.006).abs() < 1e-15);
        assert!((TimeSpan::from_micros(500.0).as_millis() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_scales() {
        assert_eq!(TimeSpan::from_years(3.0).to_string(), "3.00 yr");
        assert_eq!(TimeSpan::from_days(350.0).to_string(), "350.0 d");
        assert_eq!(TimeSpan::from_hours(5.0).to_string(), "5.00 h");
        assert_eq!(TimeSpan::from_seconds(2.0).to_string(), "2.000 s");
        assert_eq!(TimeSpan::from_millis(6.0).to_string(), "6.000 ms");
    }

    #[test]
    fn ordering() {
        assert!(TimeSpan::from_days(1_200.0) > TimeSpan::from_years(3.0));
        assert!(TimeSpan::from_days(1_000.0) < TimeSpan::from_years(3.0));
    }
}
