//! The dimensionless [`Ratio`] quantity.

quantity! {
    /// A dimensionless ratio or share, stored as a plain fraction
    /// (`1.0` = 100%).
    ///
    /// Used throughout the workspace for breakdown fractions ("manufacturing
    /// accounts for 74% of Apple's emissions"), efficiency factors (PUE is a
    /// ratio ≥ 1) and utilization.
    ///
    /// ```
    /// use cc_units::Ratio;
    ///
    /// let manufacturing = Ratio::from_percent(74.0);
    /// assert!((manufacturing.as_fraction() - 0.74).abs() < 1e-12);
    /// assert_eq!(manufacturing.to_string(), "74.0%");
    /// ```
    Ratio, fraction, "Ratio"
}

impl Ratio {
    /// The unit ratio (100%).
    pub const ONE: Self = Self { fraction: 1.0 };

    /// Creates a ratio from a fraction (`0.74` = 74%).
    #[must_use]
    pub fn from_fraction(fraction: f64) -> Self {
        Self { fraction }
    }

    /// Creates a ratio from a percentage (`74.0` = 74%).
    #[must_use]
    pub fn from_percent(percent: f64) -> Self {
        Self {
            fraction: percent / 100.0,
        }
    }

    /// The ratio as a fraction.
    #[must_use]
    pub fn as_fraction(self) -> f64 {
        self.fraction
    }

    /// The ratio as a percentage.
    #[must_use]
    pub fn as_percent(self) -> f64 {
        self.fraction * 100.0
    }

    /// The complement `1 − self` (e.g. opex share from capex share).
    #[must_use]
    pub fn complement(self) -> Self {
        Self {
            fraction: 1.0 - self.fraction,
        }
    }

    /// Clamps the ratio into `[0, 1]`.
    #[must_use]
    pub fn clamp_unit(self) -> Self {
        Self {
            fraction: self.fraction.clamp(0.0, 1.0),
        }
    }

    /// Returns `true` when the ratio lies within `[0, 1]`.
    #[must_use]
    pub fn is_share(self) -> bool {
        (0.0..=1.0).contains(&self.fraction)
    }
}

/// `Ratio * Ratio = Ratio` (compose shares).
impl core::ops::Mul for Ratio {
    type Output = Self;

    fn mul(self, rhs: Self) -> Self {
        Self {
            fraction: self.fraction * rhs.fraction,
        }
    }
}

impl core::fmt::Display for Ratio {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.1}%", self.as_percent())
    }
}

/// Scaling any quantity by a `Ratio` is scaling by its fraction.
macro_rules! ratio_scales {
    ($($q:ty),*) => {$(
        impl core::ops::Mul<Ratio> for $q {
            type Output = $q;
            fn mul(self, rhs: Ratio) -> $q {
                self * rhs.as_fraction()
            }
        }

        impl core::ops::Mul<$q> for Ratio {
            type Output = $q;
            fn mul(self, rhs: $q) -> $q {
                rhs * self.as_fraction()
            }
        }
    )*};
}

ratio_scales!(
    crate::Energy,
    crate::Power,
    crate::CarbonMass,
    crate::CarbonIntensity,
    crate::TimeSpan
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CarbonMass;

    #[test]
    fn percent_round_trip() {
        let r = Ratio::from_percent(86.0); // iPhone 11 capex share
        assert!((r.as_fraction() - 0.86).abs() < 1e-12);
        assert!((r.complement().as_percent() - 14.0).abs() < 1e-9);
    }

    #[test]
    fn share_validation() {
        assert!(Ratio::from_percent(48.0).is_share());
        assert!(!Ratio::from_fraction(1.2).is_share());
        assert_eq!(Ratio::from_fraction(1.2).clamp_unit(), Ratio::ONE);
        assert_eq!(Ratio::from_fraction(-0.1).clamp_unit(), Ratio::ZERO);
    }

    #[test]
    fn scales_other_quantities() {
        let total = CarbonMass::from_kg(72.0); // iPhone 11 total LCA
        let mfg = total * Ratio::from_percent(79.0);
        assert!((mfg.as_kg() - 56.88).abs() < 1e-9);
        assert_eq!(Ratio::from_percent(50.0) * total, total * 0.5);
    }

    #[test]
    fn composition() {
        // half of production, production is 74% of total => 37% of total.
        let ics = Ratio::from_percent(50.0) * Ratio::from_percent(74.0);
        assert!((ics.as_percent() - 37.0).abs() < 1e-9);
    }
}
