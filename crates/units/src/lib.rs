//! # cc-units
//!
//! Strongly-typed physical quantities for carbon-footprint modeling.
//!
//! The crate provides a small algebra of newtypes ([`Energy`], [`Power`],
//! [`TimeSpan`], [`CarbonMass`], [`CarbonIntensity`], [`Ratio`]) so that the
//! rest of the `chasing-carbon` workspace can never confuse, say, kilowatt-hours
//! with kilograms of CO₂e — the exact category error the paper warns about
//! ("reducing energy consumption alone fails to reduce carbon emissions").
//!
//! Quantities store a canonical unit internally (joules, watts, seconds, grams
//! CO₂e, grams CO₂e per kilowatt-hour) and expose named constructors and
//! accessors for the domain units that appear in the paper (kWh, TWh, kg,
//! metric tons, million metric tons, days, years).
//!
//! Cross-type arithmetic captures the physics:
//!
//! ```
//! use cc_units::{Power, TimeSpan, CarbonIntensity, Energy};
//!
//! // A 310 W workstation running for one year on the average US grid:
//! let energy: Energy = Power::from_watts(310.0) * TimeSpan::from_years(1.0);
//! let grid = CarbonIntensity::from_g_per_kwh(380.0); // US average, Table III
//! let carbon = energy * grid;
//! assert!((carbon.as_kg() - 1_031.9).abs() < 1.0);
//! ```
//!
//! # Design notes
//!
//! * Every type is `Copy` and implements the common traits
//!   (`Debug`/`Clone`/`PartialEq`/`PartialOrd`/`Default`/`Display`).
//! * Values are plain `f64` and may be negative (end-of-life recycling credits
//!   are negative carbon). Constructors accept any `f64`; see [`Validate`] for
//!   checked construction at data boundaries.
//! * `Div` between two values of the same type yields a dimensionless `f64`,
//!   which is how the paper expresses all of its headline ratios
//!   ("Scope 3 is 23× Scope 2").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Implements the full arithmetic/trait surface shared by every scalar
/// quantity newtype in this crate.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $canonical:ident, $quantity_str:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
        pub struct $name {
            $canonical: f64,
        }

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self { $canonical: 0.0 };

            /// Returns the absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self { $canonical: self.$canonical.abs() }
            }

            /// Returns the smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self { $canonical: self.$canonical.min(other.$canonical) }
            }

            /// Returns the larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self { $canonical: self.$canonical.max(other.$canonical) }
            }

            /// Returns `true` when the underlying value is finite.
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.$canonical.is_finite()
            }

            /// Returns `true` when the quantity is exactly zero.
            #[must_use]
            pub fn is_zero(self) -> bool {
                self.$canonical == 0.0
            }

            /// Linear interpolation between `self` (at `t = 0`) and `other`
            /// (at `t = 1`). `t` is not clamped, so this extrapolates too.
            #[must_use]
            pub fn lerp(self, other: Self, t: f64) -> Self {
                Self { $canonical: self.$canonical + (other.$canonical - self.$canonical) * t }
            }
        }

        impl crate::Validate for $name {
            fn validated(self) -> Result<Self, crate::NonFiniteError> {
                if self.$canonical.is_finite() {
                    Ok(self)
                } else {
                    Err(crate::NonFiniteError { quantity: $quantity_str })
                }
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self { $canonical: self.$canonical + rhs.$canonical }
            }
        }

        impl core::ops::AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.$canonical += rhs.$canonical;
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self { $canonical: self.$canonical - rhs.$canonical }
            }
        }

        impl core::ops::SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.$canonical -= rhs.$canonical;
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self { $canonical: -self.$canonical }
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self { $canonical: self.$canonical * rhs }
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                rhs * self
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self { $canonical: self.$canonical / rhs }
            }
        }

        /// Dividing two like quantities yields a dimensionless ratio.
        impl core::ops::Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.$canonical / rhs.$canonical
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, |acc, x| acc + x)
            }
        }

        impl<'a> core::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, |acc, x| acc + *x)
            }
        }
    };
}

mod energy;
mod intensity;
mod mass;
mod power;
mod ratio;
mod time;
mod trace;

pub use energy::Energy;
pub use intensity::CarbonIntensity;
pub use mass::CarbonMass;
pub use power::Power;
pub use ratio::Ratio;
pub use time::TimeSpan;
pub use trace::IntensityTrace;

/// Checked construction for quantity types.
///
/// All quantity constructors in this crate are infallible for ergonomics, but
/// model code that ingests external data can use [`Validate::validated`] to
/// reject non-finite values at the boundary.
///
/// ```
/// use cc_units::{Energy, Validate};
///
/// assert!(Energy::from_kwh(1.0).validated().is_ok());
/// assert!(Energy::from_kwh(f64::NAN).validated().is_err());
/// ```
pub trait Validate: Sized {
    /// Returns `Ok(self)` when the underlying value is finite.
    ///
    /// # Errors
    ///
    /// Returns [`NonFiniteError`] when the value is `NaN` or infinite.
    fn validated(self) -> Result<Self, NonFiniteError>;
}

/// Error returned by [`Validate::validated`] for `NaN` or infinite quantities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonFiniteError {
    /// Human-readable name of the offending quantity type.
    pub quantity: &'static str,
}

impl core::fmt::Display for NonFiniteError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "non-finite value for quantity `{}`", self.quantity)
    }
}

impl std::error::Error for NonFiniteError {}

/// Commonly used items, for glob import.
///
/// ```
/// use cc_units::prelude::*;
/// let e = Energy::from_kwh(1.0);
/// assert!(e > Energy::ZERO);
/// ```
pub mod prelude {
    pub use crate::{
        CarbonIntensity, CarbonMass, Energy, IntensityTrace, Power, Ratio, TimeSpan, Validate,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Energy>();
        assert_send_sync::<Power>();
        assert_send_sync::<TimeSpan>();
        assert_send_sync::<CarbonMass>();
        assert_send_sync::<CarbonIntensity>();
        assert_send_sync::<Ratio>();
        assert_send_sync::<IntensityTrace>();
        assert_send_sync::<NonFiniteError>();
    }

    #[test]
    fn non_finite_error_display() {
        let err = Energy::from_joules(f64::INFINITY).validated().unwrap_err();
        assert_eq!(err.to_string(), "non-finite value for quantity `Energy`");
    }

    #[test]
    fn validated_passes_finite_negative() {
        assert!(CarbonMass::from_kg(-3.0).validated().is_ok());
    }
}
