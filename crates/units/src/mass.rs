//! The [`CarbonMass`] quantity.

quantity! {
    /// A mass of emitted greenhouse gas, in CO₂-equivalents, stored
    /// canonically in grams.
    ///
    /// The paper spans twelve orders of magnitude of this quantity: from the
    /// fraction of a gram emitted per mobile inference up to Apple's 25
    /// **million metric tons** annual footprint, so the type provides
    /// constructors and accessors across that whole range.
    ///
    /// ```
    /// use cc_units::CarbonMass;
    ///
    /// let apple_2019 = CarbonMass::from_mt(25.0);
    /// assert_eq!(apple_2019.as_tonnes(), 25_000_000.0);
    /// ```
    CarbonMass, grams, "CarbonMass"
}

impl CarbonMass {
    /// Creates a carbon mass from grams of CO₂e.
    #[must_use]
    pub fn from_grams(grams: f64) -> Self {
        Self { grams }
    }

    /// Creates a carbon mass from kilograms of CO₂e (product LCAs).
    #[must_use]
    pub fn from_kg(kg: f64) -> Self {
        Self { grams: kg * 1e3 }
    }

    /// Creates a carbon mass from metric tons of CO₂e.
    #[must_use]
    pub fn from_tonnes(tonnes: f64) -> Self {
        Self {
            grams: tonnes * 1e6,
        }
    }

    /// Creates a carbon mass from kilotonnes (thousand metric tons) of CO₂e.
    #[must_use]
    pub fn from_kt(kt: f64) -> Self {
        Self { grams: kt * 1e9 }
    }

    /// Creates a carbon mass from million metric tons of CO₂e
    /// (corporate-inventory scale).
    #[must_use]
    pub fn from_mt(mt: f64) -> Self {
        Self { grams: mt * 1e12 }
    }

    /// Carbon mass in grams of CO₂e.
    #[must_use]
    pub fn as_grams(self) -> f64 {
        self.grams
    }

    /// Carbon mass in kilograms of CO₂e.
    #[must_use]
    pub fn as_kg(self) -> f64 {
        self.grams / 1e3
    }

    /// Carbon mass in metric tons of CO₂e.
    #[must_use]
    pub fn as_tonnes(self) -> f64 {
        self.grams / 1e6
    }

    /// Carbon mass in kilotonnes of CO₂e.
    #[must_use]
    pub fn as_kt(self) -> f64 {
        self.grams / 1e9
    }

    /// Carbon mass in million metric tons of CO₂e.
    #[must_use]
    pub fn as_mt(self) -> f64 {
        self.grams / 1e12
    }
}

/// `CarbonMass / Energy = CarbonIntensity` (back out an effective grid mix).
impl core::ops::Div<crate::Energy> for CarbonMass {
    type Output = crate::CarbonIntensity;

    fn div(self, rhs: crate::Energy) -> crate::CarbonIntensity {
        crate::CarbonIntensity::from_g_per_kwh(self.grams / rhs.as_kwh())
    }
}

/// `CarbonMass / CarbonIntensity = Energy` (how much energy a carbon budget
/// buys on a given grid — the break-even analysis of Fig 10).
impl core::ops::Div<crate::CarbonIntensity> for CarbonMass {
    type Output = crate::Energy;

    fn div(self, rhs: crate::CarbonIntensity) -> crate::Energy {
        crate::Energy::from_kwh(self.grams / rhs.as_g_per_kwh())
    }
}

impl core::fmt::Display for CarbonMass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let g = self.grams.abs();
        if g >= 1e12 {
            write!(f, "{:.3} Mt CO2e", self.as_mt())
        } else if g >= 1e9 {
            write!(f, "{:.3} kt CO2e", self.as_kt())
        } else if g >= 1e6 {
            write!(f, "{:.3} t CO2e", self.as_tonnes())
        } else if g >= 1e3 {
            write!(f, "{:.3} kg CO2e", self.as_kg())
        } else {
            write!(f, "{:.3} g CO2e", self.grams)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CarbonIntensity, Energy};

    #[test]
    fn conversions() {
        assert_eq!(CarbonMass::from_kg(1.0).as_grams(), 1e3);
        assert_eq!(CarbonMass::from_tonnes(1.0).as_kg(), 1e3);
        assert_eq!(CarbonMass::from_kt(1.0).as_tonnes(), 1e3);
        assert_eq!(CarbonMass::from_mt(1.0).as_kt(), 1e3);
    }

    #[test]
    fn fig10_breakeven_energy() {
        // 25 kg CO2e of SoC manufacturing amortized on the US grid buys
        // 25_000 g / 380 g/kWh ~= 65.8 kWh of operational energy.
        let budget = CarbonMass::from_kg(25.0);
        let grid = CarbonIntensity::from_g_per_kwh(380.0);
        let energy = budget / grid;
        assert!((energy.as_kwh() - 65.789).abs() < 0.01);
        // And the inverse recovers the intensity.
        let back = budget / energy;
        assert!((back.as_g_per_kwh() - 380.0).abs() < 1e-9);
    }

    #[test]
    fn effective_intensity_from_totals() {
        let emitted = Energy::from_kwh(100.0) * CarbonIntensity::from_g_per_kwh(41.0);
        let eff = emitted / Energy::from_kwh(100.0);
        assert!((eff.as_g_per_kwh() - 41.0).abs() < 1e-9);
    }

    #[test]
    fn display_scales() {
        assert_eq!(CarbonMass::from_mt(25.0).to_string(), "25.000 Mt CO2e");
        assert_eq!(CarbonMass::from_kt(684.0).to_string(), "684.000 kt CO2e");
        assert_eq!(CarbonMass::from_tonnes(1.9).to_string(), "1.900 t CO2e");
        assert_eq!(CarbonMass::from_kg(66.0).to_string(), "66.000 kg CO2e");
        assert_eq!(CarbonMass::from_grams(0.5).to_string(), "0.500 g CO2e");
    }

    #[test]
    fn recycling_credit_is_negative() {
        let credit = CarbonMass::from_kg(-2.0);
        let total = CarbonMass::from_kg(70.0) + credit;
        assert_eq!(total, CarbonMass::from_kg(68.0));
    }
}
