//! Deterministic random numbers for Monte-Carlo models.
//!
//! The workspace builds in offline environments, so instead of the `rand`
//! crate this module provides a splitmix64 generator behind a minimal [`Rng`]
//! trait. Sequences are fully determined by the seed, which is what the
//! experiment layer requires for reproducible `ext-mc` runs.

use std::ops::Range;

/// Minimal uniform-random source used by the uncertainty machinery.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[range.start, range.end)`.
    fn gen_range(&mut self, range: Range<f64>) -> f64 {
        range.start + self.next_f64() * (range.end - range.start)
    }
}

/// Sebastiano Vigna's splitmix64: tiny state, passes BigCrush, and — unlike
/// `StdRng` — stable across toolchain upgrades, so seeded experiment output
/// never shifts under a compiler bump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed (API-compatible with
    /// `rand::SeedableRng::seed_from_u64`).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        let mut c = SplitMix64::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = SplitMix64::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&v));
            sum += v;
        }
        // Mean of U(2, 5) is 3.5; 10k samples land well within ±0.1.
        assert!((sum / 10_000.0 - 3.5).abs() < 0.1);
    }
}
