//! Growth-curve models for demand projection.
//!
//! Fig 1's ICT projections are growth curves; this module provides the two
//! standard shapes (exponential and logistic), a least-squares fitter for the
//! exponential case, and projection of a [`YearSeries`] forward.

use crate::series::YearSeries;
use crate::stats;

/// A growth model for a scalar demand curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GrowthModel {
    /// `v(t) = v0 · (1 + r)^(t − t0)`.
    Exponential {
        /// Reference year.
        t0: u16,
        /// Value at the reference year.
        v0: f64,
        /// Annual growth rate (0.05 = 5 %/yr).
        rate: f64,
    },
    /// `v(t) = cap / (1 + exp(−k · (t − midpoint)))` — saturating adoption.
    Logistic {
        /// Carrying capacity (saturation value).
        cap: f64,
        /// Steepness.
        k: f64,
        /// Inflection year.
        midpoint: f64,
    },
}

impl GrowthModel {
    /// Evaluates the model at (fractional) year `t`.
    #[must_use]
    pub fn value_at(&self, t: f64) -> f64 {
        match *self {
            Self::Exponential { t0, v0, rate } => v0 * (1.0 + rate).powf(t - f64::from(t0)),
            Self::Logistic { cap, k, midpoint } => cap / (1.0 + (-k * (t - midpoint)).exp()),
        }
    }

    /// Samples the model over an inclusive year range.
    #[must_use]
    pub fn sample(&self, from: u16, to: u16) -> YearSeries {
        (from..=to)
            .map(|y| (y, self.value_at(f64::from(y))))
            .collect()
    }

    /// Fits an exponential model to a positive-valued series by linear
    /// regression in log space.
    ///
    /// Returns `None` with fewer than two samples or non-positive values.
    #[must_use]
    pub fn fit_exponential(series: &YearSeries) -> Option<Self> {
        if series.len() < 2 || series.values().any(|v| v <= 0.0) {
            return None;
        }
        let pts: Vec<(f64, f64)> = series.iter().map(|(y, v)| (f64::from(y), v.ln())).collect();
        let (a, b) = stats::linear_fit(&pts)?;
        let t0 = series.years().next()?;
        Some(Self::Exponential {
            t0,
            v0: (a + b * f64::from(t0)).exp(),
            rate: b.exp() - 1.0,
        })
    }
}

/// Projects a series forward to `to` using an exponential fit of its history.
///
/// Returns `None` when the series cannot be fit.
#[must_use]
pub fn project_exponential(series: &YearSeries, to: u16) -> Option<YearSeries> {
    let model = GrowthModel::fit_exponential(series)?;
    let from = series.years().next()?;
    Some(model.sample(from, to))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_round_trips_through_fit() {
        let truth = GrowthModel::Exponential {
            t0: 2010,
            v0: 100.0,
            rate: 0.07,
        };
        let series = truth.sample(2010, 2020);
        let fit = GrowthModel::fit_exponential(&series).unwrap();
        // The fit must recover the value at an extrapolated year closely.
        let err = (fit.value_at(2030.0) / truth.value_at(2030.0) - 1.0).abs();
        assert!(err < 1e-6, "err {err}");
    }

    #[test]
    fn logistic_saturates() {
        let m = GrowthModel::Logistic {
            cap: 1_000.0,
            k: 0.5,
            midpoint: 2020.0,
        };
        assert!((m.value_at(2020.0) - 500.0).abs() < 1e-9);
        assert!(m.value_at(2050.0) > 999.0);
        assert!(m.value_at(1990.0) < 1.0);
        let s = m.sample(2010, 2030);
        assert!(s.is_monotone_nondecreasing());
    }

    #[test]
    fn projection_of_datacenter_demand() {
        // The expected-case datacenter segment of Fig 1, projected from its
        // own first decade: growth should continue, roughly 10-18%/yr.
        let dc: YearSeries = cc_first_decade();
        let projected = project_exponential(&dc, 2030).unwrap();
        let v2030 = projected.get(2030).unwrap();
        assert!(
            v2030 > 1_500.0 && v2030 < 4_000.0,
            "2030 projection {v2030}"
        );
        let model = GrowthModel::fit_exponential(&dc).unwrap();
        if let GrowthModel::Exponential { rate, .. } = model {
            assert!(rate > 0.08 && rate < 0.20, "rate {rate}");
        }
    }

    fn cc_first_decade() -> YearSeries {
        // 2010..2020 samples of the expected datacenter curve (250..800 TWh).
        YearSeries::from_pairs([(2010, 250.0), (2015, 400.0), (2020, 800.0)])
    }

    #[test]
    fn fit_rejects_degenerate_input() {
        assert!(GrowthModel::fit_exponential(&YearSeries::new()).is_none());
        let negative = YearSeries::from_pairs([(2010, -1.0), (2011, 2.0)]);
        assert!(GrowthModel::fit_exponential(&negative).is_none());
        let single = YearSeries::from_pairs([(2010, 1.0)]);
        assert!(GrowthModel::fit_exponential(&single).is_none());
    }
}
