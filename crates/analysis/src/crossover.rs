//! Break-even (crossover) solvers.
//!
//! The paper's Fig 10 asks: after how many inferences (or days of continuous
//! operation) does a device's cumulative *operational* carbon equal its
//! *manufacturing* carbon? For a constant per-unit emission rate that is a
//! division; for general monotone accumulation functions this module provides
//! a bisection solver.

/// Break-even count for a fixed budget consumed at a constant per-unit rate:
/// `budget / per_unit`.
///
/// Returns `None` when `per_unit` is not strictly positive (the budget is
/// never amortized — e.g. operation powered by zero-carbon energy).
///
/// ```
/// // 25 kg manufacturing budget, 5 µg per inference:
/// let n = cc_analysis::crossover::linear_breakeven(25_000.0, 5e-6).unwrap();
/// assert_eq!(n, 5e9);
/// ```
#[must_use]
pub fn linear_breakeven(budget: f64, per_unit: f64) -> Option<f64> {
    if per_unit > 0.0 && budget >= 0.0 {
        Some(budget / per_unit)
    } else {
        None
    }
}

/// Finds `x` in `[lo, hi]` where the monotone non-decreasing function `f`
/// crosses `target`, by bisection to relative tolerance `rel_tol`.
///
/// Returns `None` when `target` is not bracketed by `f(lo)` and `f(hi)`.
///
/// # Panics
///
/// Panics in debug builds when `lo > hi` or `rel_tol <= 0`.
pub fn bisect_crossing(
    mut lo: f64,
    mut hi: f64,
    target: f64,
    rel_tol: f64,
    f: impl Fn(f64) -> f64,
) -> Option<f64> {
    debug_assert!(lo <= hi, "invalid bracket");
    debug_assert!(rel_tol > 0.0, "tolerance must be positive");
    let (flo, fhi) = (f(lo), f(hi));
    if flo > target || fhi < target {
        return None;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if (hi - lo) <= rel_tol * mid.abs().max(1e-300) {
            return Some(mid);
        }
        if f(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_cases() {
        assert_eq!(linear_breakeven(100.0, 2.0), Some(50.0));
        assert_eq!(linear_breakeven(100.0, 0.0), None);
        assert_eq!(linear_breakeven(100.0, -1.0), None);
        assert_eq!(linear_breakeven(-1.0, 1.0), None);
        assert_eq!(linear_breakeven(0.0, 1.0), Some(0.0));
    }

    #[test]
    fn bisection_matches_linear() {
        let n = bisect_crossing(0.0, 1e12, 25_000.0, 1e-12, |x| x * 5e-6).unwrap();
        assert!((n - 5e9).abs() < 1.0);
    }

    #[test]
    fn bisection_nonlinear() {
        // Cumulative emissions with an efficiency-decay term.
        let f = |days: f64| 10.0 * days + 0.01 * days * days;
        let crossing = bisect_crossing(0.0, 10_000.0, 5_000.0, 1e-9, f).unwrap();
        let expected = (-10.0 + (100.0f64 + 4.0 * 0.01 * 5_000.0).sqrt()) / (2.0 * 0.01);
        assert!((crossing - expected).abs() < 1e-3);
    }

    #[test]
    fn bisection_unbracketed() {
        assert!(bisect_crossing(0.0, 10.0, 1_000.0, 1e-9, |x| x).is_none());
        assert!(bisect_crossing(5.0, 10.0, 1.0, 1e-9, |x| x).is_none());
    }
}
