//! Break-even (crossover) solvers.
//!
//! The paper's Fig 10 asks: after how many inferences (or days of continuous
//! operation) does a device's cumulative *operational* carbon equal its
//! *manufacturing* carbon? For a constant per-unit emission rate that is a
//! division; for general monotone accumulation functions this module provides
//! a bisection solver.

/// Break-even count for a fixed budget consumed at a constant per-unit rate:
/// `budget / per_unit`.
///
/// Returns `None` when `per_unit` is not strictly positive (the budget is
/// never amortized — e.g. operation powered by zero-carbon energy).
///
/// ```
/// // 25 kg manufacturing budget, 5 µg per inference:
/// let n = cc_analysis::crossover::linear_breakeven(25_000.0, 5e-6).unwrap();
/// assert_eq!(n, 5e9);
/// ```
#[must_use]
pub fn linear_breakeven(budget: f64, per_unit: f64) -> Option<f64> {
    if per_unit > 0.0 && budget >= 0.0 {
        Some(budget / per_unit)
    } else {
        None
    }
}

/// Finds `x` in `[lo, hi]` where the monotone non-decreasing function `f`
/// crosses `target`, by bisection to relative tolerance `rel_tol`.
///
/// Returns `None` when `target` is not bracketed by `f(lo)` and `f(hi)`.
///
/// # Panics
///
/// Panics in debug builds when `lo > hi` or `rel_tol <= 0`.
pub fn bisect_crossing(
    mut lo: f64,
    mut hi: f64,
    target: f64,
    rel_tol: f64,
    f: impl Fn(f64) -> f64,
) -> Option<f64> {
    debug_assert!(lo <= hi, "invalid bracket");
    debug_assert!(rel_tol > 0.0, "tolerance must be positive");
    let (flo, fhi) = (f(lo), f(hi));
    if flo > target || fhi < target {
        return None;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if (hi - lo) <= rel_tol * mid.abs().max(1e-300) {
            return Some(mid);
        }
        if f(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// Finds every `x` where the piecewise-linear interpolation of `points`
/// crosses `target`. Points are `(x, y)` samples sorted by `x` (the caller's
/// sweep axis); the curve need not be monotone — each bracketing segment
/// contributes one crossing, located by [`bisect_crossing`] on the segment's
/// linear interpolant. A sample sitting exactly on the target counts once,
/// at the segment arriving on it — or at the sample itself when the curve
/// *starts* on the target (there is no arriving segment to attribute it to).
///
/// Returns an empty vector with fewer than two points or when no segment
/// brackets the target. Non-finite samples poison only the segments that
/// touch them.
#[must_use]
pub fn piecewise_crossings(points: &[(f64, f64)], target: f64) -> Vec<f64> {
    let mut crossings = Vec::new();
    if points.len() >= 2 {
        if let Some(&(x0, y0)) = points.first() {
            if x0.is_finite() && y0 == target {
                crossings.push(x0);
            }
        }
    }
    for pair in points.windows(2) {
        let ((x0, y0), (x1, y1)) = (pair[0], pair[1]);
        if ![x0, y0, x1, y1].iter().all(|v| v.is_finite()) || x1 <= x0 {
            continue;
        }
        // Half-open bracket so a sample exactly on the target is attributed
        // to one segment, not both.
        let brackets = (y0 < target && y1 >= target) || (y0 > target && y1 <= target);
        if !brackets {
            continue;
        }
        // Bisect on the segment's interpolant, flipped when decreasing so
        // the solver always sees a non-decreasing function.
        let rising = y1 >= y0;
        let lerp = |x: f64| {
            let y = y0 + (y1 - y0) * ((x - x0) / (x1 - x0));
            if rising {
                y
            } else {
                -y
            }
        };
        let goal = if rising { target } else { -target };
        if let Some(x) = bisect_crossing(x0, x1, goal, 1e-12, lerp) {
            crossings.push(x);
        }
    }
    crossings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_cases() {
        assert_eq!(linear_breakeven(100.0, 2.0), Some(50.0));
        assert_eq!(linear_breakeven(100.0, 0.0), None);
        assert_eq!(linear_breakeven(100.0, -1.0), None);
        assert_eq!(linear_breakeven(-1.0, 1.0), None);
        assert_eq!(linear_breakeven(0.0, 1.0), Some(0.0));
    }

    #[test]
    fn bisection_matches_linear() {
        let n = bisect_crossing(0.0, 1e12, 25_000.0, 1e-12, |x| x * 5e-6).unwrap();
        assert!((n - 5e9).abs() < 1.0);
    }

    #[test]
    fn bisection_nonlinear() {
        // Cumulative emissions with an efficiency-decay term.
        let f = |days: f64| 10.0 * days + 0.01 * days * days;
        let crossing = bisect_crossing(0.0, 10_000.0, 5_000.0, 1e-9, f).unwrap();
        let expected = (-10.0 + (100.0f64 + 4.0 * 0.01 * 5_000.0).sqrt()) / (2.0 * 0.01);
        assert!((crossing - expected).abs() < 1e-3);
    }

    #[test]
    fn bisection_unbracketed() {
        assert!(bisect_crossing(0.0, 10.0, 1_000.0, 1e-9, |x| x).is_none());
        assert!(bisect_crossing(5.0, 10.0, 1.0, 1e-9, |x| x).is_none());
    }

    #[test]
    fn piecewise_finds_rising_and_falling_crossings() {
        // Rising curve crosses 5 between x=1 and x=2.
        let rising = [(0.0, 0.0), (1.0, 2.0), (2.0, 8.0)];
        let xs = piecewise_crossings(&rising, 5.0);
        assert_eq!(xs.len(), 1);
        assert!((xs[0] - 1.5).abs() < 1e-9, "{xs:?}");

        // Falling curve (a break-even year shrinking with growth).
        let falling = [(1.0, 2019.0), (1.2, 2018.0), (1.4, 2016.0)];
        let xs = piecewise_crossings(&falling, 2017.0);
        assert_eq!(xs.len(), 1);
        assert!((xs[0] - 1.3).abs() < 1e-9, "{xs:?}");

        // Non-monotone curve crosses twice.
        let bump = [(0.0, 0.0), (1.0, 10.0), (2.0, 0.0)];
        let xs = piecewise_crossings(&bump, 5.0);
        assert_eq!(xs.len(), 2);
        assert!((xs[0] - 0.5).abs() < 1e-9 && (xs[1] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn piecewise_handles_degenerate_inputs() {
        assert!(piecewise_crossings(&[], 1.0).is_empty());
        assert!(piecewise_crossings(&[(0.0, 5.0)], 1.0).is_empty());
        // All above / all below: no crossing.
        assert!(piecewise_crossings(&[(0.0, 5.0), (1.0, 6.0)], 1.0).is_empty());
        // A sample exactly on the target yields one crossing, not two.
        let touch = [(0.0, 0.0), (1.0, 5.0), (2.0, 10.0)];
        assert_eq!(piecewise_crossings(&touch, 5.0).len(), 1);
        // A curve *starting* exactly on the target reports that point (it
        // has no arriving segment).
        let starts_on = [(1.0, 2017.0), (1.1, 2016.5)];
        assert_eq!(piecewise_crossings(&starts_on, 2017.0), vec![1.0]);
        // NaN samples poison only their segments.
        let noisy = [(0.0, 0.0), (1.0, f64::NAN), (2.0, 4.0), (3.0, 8.0)];
        let xs = piecewise_crossings(&noisy, 6.0);
        assert_eq!(xs.len(), 1);
        assert!((xs[0] - 2.5).abs() < 1e-9);
    }
}
