//! Parsed distribution specifications for Monte-Carlo scenario sampling.
//!
//! A [`DistSpec`] is the value side of a `field ~ dist(args)` binding: the
//! sweep layer parses `fab.node_nm ~ triangular(5,7,10)` into one of these
//! and then draws scenario values from it with a seeded [`Rng`]. Three
//! families cover the disclosure-level uncertainty the paper's inputs carry:
//!
//! * `triangular(low,mode,high)` — the standard expert-elicitation shape for
//!   LCA parameters (a best guess with asymmetric bounds);
//! * `uniform(low,high)` — "somewhere in this range, no preference";
//! * `normal(mu,sigma)` — measurement-style spread around a reported value.
//!
//! Every family samples by inverse-CDF from a *single* uniform draw, so one
//! sample consumes exactly one `next_u64` and sampled sequences are stable
//! under refactors that change nothing but code layout. The normal inverse
//! CDF is Acklam's rational approximation (relative error < 1.15e-9) — pure
//! arithmetic, identical on every platform, no rejection loop.

use crate::rng::Rng;
use core::fmt;

/// A parsed distribution specification for one scenario field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DistSpec {
    /// `triangular(low,mode,high)` with `low <= mode <= high`, `low < high`.
    Triangular {
        /// Lower bound.
        low: f64,
        /// Most likely value.
        mode: f64,
        /// Upper bound.
        high: f64,
    },
    /// `uniform(low,high)` with `low < high`.
    Uniform {
        /// Lower bound (inclusive).
        low: f64,
        /// Upper bound (exclusive).
        high: f64,
    },
    /// `normal(mu,sigma)` with `sigma > 0`.
    Normal {
        /// Mean.
        mu: f64,
        /// Standard deviation.
        sigma: f64,
    },
}

/// Why a distribution specification failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistError {
    /// The offending spec text.
    pub spec: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution `{}`: {}", self.spec, self.message)
    }
}

impl std::error::Error for DistError {}

fn error(spec: &str, message: impl Into<String>) -> DistError {
    DistError {
        spec: spec.to_string(),
        message: message.into(),
    }
}

/// Parses the comma-separated argument list of a spec into exactly `N`
/// finite floats.
fn args<const N: usize>(spec: &str, body: &str) -> Result<[f64; N], DistError> {
    let parts: Vec<&str> = body.split(',').map(str::trim).collect();
    if parts.len() != N {
        return Err(error(
            spec,
            format!("expected {N} arguments, found {}", parts.len()),
        ));
    }
    let mut out = [0.0; N];
    for (slot, part) in out.iter_mut().zip(&parts) {
        let value: f64 = part
            .parse()
            .map_err(|_| error(spec, format!("`{part}` is not a number")))?;
        if !value.is_finite() {
            return Err(error(spec, format!("`{part}` is not finite")));
        }
        *slot = value;
    }
    Ok(out)
}

impl DistSpec {
    /// Parses `triangular(low,mode,high)`, `uniform(low,high)` or
    /// `normal(mu,sigma)`. Whitespace around the name, parentheses and
    /// arguments is ignored; anything else is an error.
    pub fn parse(text: &str) -> Result<Self, DistError> {
        let spec = text.trim();
        let Some((name, rest)) = spec.split_once('(') else {
            return Err(error(
                spec,
                "expected `triangular(low,mode,high)`, `uniform(low,high)` \
                 or `normal(mu,sigma)`",
            ));
        };
        let Some(body) = rest.strip_suffix(')') else {
            return Err(error(spec, "missing closing `)`"));
        };
        match name.trim() {
            "triangular" => {
                let [low, mode, high] = args(spec, body)?;
                if !(low <= mode && mode <= high) {
                    return Err(error(spec, "require low <= mode <= high"));
                }
                if low >= high {
                    return Err(error(spec, "require low < high"));
                }
                Ok(Self::Triangular { low, mode, high })
            }
            "uniform" => {
                let [low, high] = args(spec, body)?;
                if low >= high {
                    return Err(error(spec, "require low < high"));
                }
                Ok(Self::Uniform { low, high })
            }
            "normal" => {
                let [mu, sigma] = args(spec, body)?;
                if sigma <= 0.0 {
                    return Err(error(spec, "require sigma > 0"));
                }
                Ok(Self::Normal { mu, sigma })
            }
            other => Err(error(
                spec,
                format!("unknown distribution `{other}` (try triangular, uniform or normal)"),
            )),
        }
    }

    /// The central value of the distribution — the mode, midpoint or mean.
    /// The Monte-Carlo matrix probes this against the base scenario's
    /// validation rules before any sampling, so `uniform(-1,1)` on a
    /// strictly-positive field fails fast instead of on a random sample.
    #[must_use]
    pub fn central(&self) -> f64 {
        match *self {
            Self::Triangular { mode, .. } => mode,
            Self::Uniform { low, high } => (low + high) / 2.0,
            Self::Normal { mu, .. } => mu,
        }
    }

    /// Draws one sample by inverse-CDF. Consumes exactly one `next_u64`
    /// from `rng` regardless of the family.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        // Uniform in the *open* interval (0, 1): the +0.5 offset keeps the
        // normal inverse CDF away from its poles at 0 and 1.
        let u = ((rng.next_u64() >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
        match *self {
            Self::Triangular { low, mode, high } => {
                let fc = (mode - low) / (high - low);
                if u < fc {
                    low + (u * (high - low) * (mode - low)).sqrt()
                } else {
                    high - ((1.0 - u) * (high - low) * (high - mode)).sqrt()
                }
            }
            Self::Uniform { low, high } => low + u * (high - low),
            Self::Normal { mu, sigma } => mu + sigma * inverse_normal_cdf(u),
        }
    }
}

impl fmt::Display for DistSpec {
    /// Canonical round-trippable text: `DistSpec::parse(&spec.to_string())`
    /// reproduces `spec` exactly. This is the form artifact metadata and
    /// served requests echo.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::Triangular { low, mode, high } => {
                write!(f, "triangular({low},{mode},{high})")
            }
            Self::Uniform { low, high } => write!(f, "uniform({low},{high})"),
            Self::Normal { mu, sigma } => write!(f, "normal({mu},{sigma})"),
        }
    }
}

/// Acklam's inverse-normal-CDF approximation (relative error < 1.15e-9 over
/// the open unit interval). Rational minimax fits on three regions; pure
/// arithmetic plus `sqrt`/`ln`, so it evaluates identically everywhere.
fn inverse_normal_cdf(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use crate::stats::StreamingStats;

    #[test]
    fn parses_all_three_families() {
        assert_eq!(
            DistSpec::parse("triangular(5,7,10)").unwrap(),
            DistSpec::Triangular {
                low: 5.0,
                mode: 7.0,
                high: 10.0
            }
        );
        assert_eq!(
            DistSpec::parse(" uniform( 1.2 , 1.4 ) ").unwrap(),
            DistSpec::Uniform {
                low: 1.2,
                high: 1.4
            }
        );
        assert_eq!(
            DistSpec::parse("normal(380,25)").unwrap(),
            DistSpec::Normal {
                mu: 380.0,
                sigma: 25.0
            }
        );
    }

    #[test]
    fn display_round_trips() {
        for text in ["triangular(5,7,10)", "uniform(1.2,1.4)", "normal(380,25)"] {
            let spec = DistSpec::parse(text).unwrap();
            assert_eq!(spec.to_string(), text);
            assert_eq!(DistSpec::parse(&spec.to_string()).unwrap(), spec);
        }
    }

    #[test]
    fn rejects_malformed_specs() {
        for (text, fragment) in [
            ("triangular", "expected"),
            ("triangular(5,7", "closing"),
            ("triangular(5,7)", "expected 3 arguments"),
            ("triangular(7,5,10)", "low <= mode <= high"),
            ("triangular(5,5,5)", "low < high"),
            ("uniform(2,1)", "low < high"),
            ("uniform(1,nope)", "not a number"),
            ("uniform(1,inf)", "not finite"),
            ("normal(0,0)", "sigma > 0"),
            ("lognormal(1,2)", "unknown distribution"),
        ] {
            let err = DistSpec::parse(text).unwrap_err();
            assert!(
                err.to_string().contains(fragment),
                "{text}: {err} should mention {fragment}"
            );
        }
    }

    #[test]
    fn central_values() {
        assert_eq!(
            DistSpec::parse("triangular(5,7,10)").unwrap().central(),
            7.0
        );
        assert_eq!(DistSpec::parse("uniform(1,3)").unwrap().central(), 2.0);
        assert_eq!(DistSpec::parse("normal(380,25)").unwrap().central(), 380.0);
    }

    #[test]
    fn samples_stay_in_bounds_and_near_expectation() {
        let tri = DistSpec::parse("triangular(5,7,10)").unwrap();
        let uni = DistSpec::parse("uniform(1.2,1.4)").unwrap();
        let mut rng = SplitMix64::seed_from_u64(7);
        let mut tri_stats = StreamingStats::new();
        let mut uni_stats = StreamingStats::new();
        for _ in 0..20_000 {
            let t = tri.sample(&mut rng);
            assert!((5.0..=10.0).contains(&t));
            tri_stats.push(t);
            let v = uni.sample(&mut rng);
            assert!((1.2..1.4).contains(&v));
            uni_stats.push(v);
        }
        // Triangular mean = (5 + 7 + 10) / 3.
        let tri_mean = tri_stats.summary().unwrap().mean;
        assert!((tri_mean - 22.0 / 3.0).abs() < 0.03, "{tri_mean}");
        let uni_mean = uni_stats.summary().unwrap().mean;
        assert!((uni_mean - 1.3).abs() < 0.002, "{uni_mean}");
    }

    #[test]
    fn normal_sampling_matches_moments_and_quantiles() {
        let dist = DistSpec::parse("normal(100,15)").unwrap();
        let mut rng = SplitMix64::seed_from_u64(11);
        let mut stats = StreamingStats::new();
        for _ in 0..50_000 {
            stats.push(dist.sample(&mut rng));
        }
        let s = stats.summary().unwrap();
        assert!((s.mean - 100.0).abs() < 0.3, "{}", s.mean);
        assert!((s.stddev - 15.0).abs() < 0.3, "{}", s.stddev);
        // N(100, 15): p05 ≈ 100 − 1.6449·15 ≈ 75.3, p95 ≈ 124.7.
        assert!((s.p05 - 75.33).abs() < 1.0, "{}", s.p05);
        assert!((s.p95 - 124.67).abs() < 1.0, "{}", s.p95);
    }

    #[test]
    fn inverse_normal_cdf_hits_known_quantiles() {
        for (p, z) in [
            (0.5, 0.0),
            (0.975, 1.959_964),
            (0.025, -1.959_964),
            (0.95, 1.644_854),
            (0.01, -2.326_348),
            (0.001, -3.090_232),
        ] {
            assert!(
                (inverse_normal_cdf(p) - z).abs() < 1e-5,
                "phi^-1({p}) = {} != {z}",
                inverse_normal_cdf(p)
            );
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let dist = DistSpec::parse("triangular(5,7,10)").unwrap();
        let draw = |seed| {
            let mut rng = SplitMix64::seed_from_u64(seed);
            (0..16).map(|_| dist.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }
}
