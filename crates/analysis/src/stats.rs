//! Small summary-statistics helpers.
//!
//! Fig 6 reports "one standard deviation of manufacturing and operational-use
//! breakdowns" across device models; these helpers compute the category
//! means/deviations used there.

/// Arithmetic mean. Returns `None` for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Sample standard deviation (n − 1 denominator). Returns `None` with fewer
/// than two values.
#[must_use]
pub fn stddev(values: &[f64]) -> Option<f64> {
    if values.len() < 2 {
        return None;
    }
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    Some(var.sqrt())
}

/// Mean and sample standard deviation in one pass-friendly call; the
/// deviation is 0 for singletons.
#[must_use]
pub fn mean_std(values: &[f64]) -> Option<(f64, f64)> {
    let m = mean(values)?;
    Some((m, stddev(values).unwrap_or(0.0)))
}

/// Smallest and largest value. Returns `None` for an empty slice; any NaN
/// poisons both extremes (`f64::min`/`max` would silently skip NaN, leaving
/// the extremes inconsistent with a NaN mean — so it is checked explicitly).
#[must_use]
pub fn min_max(values: &[f64]) -> Option<(f64, f64)> {
    let first = *values.first()?;
    if values.iter().any(|v| v.is_nan()) {
        return Some((f64::NAN, f64::NAN));
    }
    Some(
        values
            .iter()
            .fold((first, first), |(lo, hi), &v| (lo.min(v), hi.max(v))),
    )
}

/// Five-number digest of a value set, used by cross-scenario comparison
/// reports to say how much a sweep actually moved a metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of values summarized.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for singletons).
    pub stddev: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
}

impl Summary {
    /// `max / min`, the headline "this knob moves the answer N×" number.
    /// `None` when the minimum is zero or the ratio is not finite.
    #[must_use]
    pub fn spread_ratio(&self) -> Option<f64> {
        let ratio = self.max / self.min;
        ratio.is_finite().then_some(ratio)
    }
}

/// Summarizes a value set. Returns `None` for an empty slice.
#[must_use]
pub fn summarize(values: &[f64]) -> Option<Summary> {
    let (mean, stddev) = mean_std(values)?;
    let (min, max) = min_max(values)?;
    Some(Summary {
        n: values.len(),
        mean,
        stddev,
        min,
        max,
    })
}

/// Ordinary least-squares fit `y = a + b·x`; returns `(a, b)`.
///
/// Returns `None` with fewer than two points or zero x-variance.
#[must_use]
pub fn linear_fit(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-30 {
        return None;
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    Some((a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(stddev(&[1.0]), None);
        let sd = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((sd - 2.138).abs() < 1e-3);
        assert_eq!(mean_std(&[5.0]), Some((5.0, 0.0)));
    }

    #[test]
    fn summarize_digests_a_sweep() {
        assert_eq!(summarize(&[]), None);
        assert_eq!(min_max(&[]), None);
        assert_eq!(min_max(&[3.0, 1.0, 2.0]), Some((1.0, 3.0)));
        let s = summarize(&[350.0, 700.0, 1400.0]).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 350.0);
        assert_eq!(s.max, 1400.0);
        assert!((s.mean - 816.666).abs() < 1e-2);
        assert!((s.spread_ratio().unwrap() - 4.0).abs() < 1e-12);
        let single = summarize(&[5.0]).unwrap();
        assert_eq!(single.stddev, 0.0);
        let zero_min = summarize(&[0.0, 1.0]).unwrap();
        assert_eq!(zero_min.spread_ratio(), None);
        // NaN poisons the extremes, keeping them consistent with the mean.
        let (lo, hi) = min_max(&[f64::NAN, 5.0, 2.0]).unwrap();
        assert!(lo.is_nan() && hi.is_nan());
    }

    #[test]
    fn linear_fit_recovers_line() {
        let pts: Vec<(f64, f64)> = (0..10)
            .map(|i| (f64::from(i), 3.0 + 2.0 * f64::from(i)))
            .collect();
        let (a, b) = linear_fit(&pts).unwrap();
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
        assert_eq!(linear_fit(&[(1.0, 1.0)]), None);
        assert_eq!(linear_fit(&[(1.0, 1.0), (1.0, 2.0)]), None);
    }
}
