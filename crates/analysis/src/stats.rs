//! Summary-statistics helpers, buffered and streaming.
//!
//! The buffered half ([`mean`], [`stddev`], [`summarize`]) serves small
//! in-memory value sets: Fig 6's "one standard deviation of manufacturing
//! and operational-use breakdowns" and the per-sweep [`Summary`] digests.
//!
//! The streaming half serves Monte-Carlo sweeps, where 10⁴–10⁶ sampled
//! model outputs must be digested without buffering the sample:
//! [`Welford`] maintains mean/variance in O(1) state, [`P2Quantile`] runs
//! the P² marker algorithm (Jain & Chlamtac, CACM 1985) for a single
//! quantile in O(1) state, and [`StreamingStats`] bundles both with
//! min/max into the n/mean/stddev/min/max/p05/p50/p95 digest behind every
//! confidence-banded comparison line. Both accumulators are
//! order-sensitive by construction, so callers that need byte-identical
//! output across thread counts must push values in a deterministic order
//! (the engine's Monte-Carlo driver reorders samples by index before
//! pushing).

/// Arithmetic mean. Returns `None` for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Sample standard deviation (n − 1 denominator). Returns `None` with fewer
/// than two values.
#[must_use]
pub fn stddev(values: &[f64]) -> Option<f64> {
    if values.len() < 2 {
        return None;
    }
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    Some(var.sqrt())
}

/// Mean and sample standard deviation in one pass-friendly call; the
/// deviation is 0 for singletons.
#[must_use]
pub fn mean_std(values: &[f64]) -> Option<(f64, f64)> {
    let m = mean(values)?;
    Some((m, stddev(values).unwrap_or(0.0)))
}

/// Smallest and largest value. Returns `None` for an empty slice; any NaN
/// poisons both extremes (`f64::min`/`max` would silently skip NaN, leaving
/// the extremes inconsistent with a NaN mean — so it is checked explicitly).
#[must_use]
pub fn min_max(values: &[f64]) -> Option<(f64, f64)> {
    let first = *values.first()?;
    if values.iter().any(|v| v.is_nan()) {
        return Some((f64::NAN, f64::NAN));
    }
    Some(
        values
            .iter()
            .fold((first, first), |(lo, hi), &v| (lo.min(v), hi.max(v))),
    )
}

/// Five-number digest of a value set, used by cross-scenario comparison
/// reports to say how much a sweep actually moved a metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of values summarized.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for singletons).
    pub stddev: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
}

impl Summary {
    /// `max / min`, the headline "this knob moves the answer N×" number.
    /// `None` when the minimum is zero or the ratio is not finite.
    #[must_use]
    pub fn spread_ratio(&self) -> Option<f64> {
        let ratio = self.max / self.min;
        ratio.is_finite().then_some(ratio)
    }
}

/// Summarizes a value set. Returns `None` for an empty slice.
#[must_use]
pub fn summarize(values: &[f64]) -> Option<Summary> {
    let (mean, stddev) = mean_std(values)?;
    let (min, max) = min_max(values)?;
    Some(Summary {
        n: values.len(),
        mean,
        stddev,
        min,
        max,
    })
}

/// Welford's online mean/variance accumulator: numerically stable
/// single-pass mean and sample variance in three words of state.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one value in.
    pub fn push(&mut self, value: f64) {
        self.n += 1;
        let delta = value - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Number of values folded in so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean; `None` while empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Sample variance (n − 1 denominator); 0 for a singleton, `None`
    /// while empty — matching the buffered [`mean_std`] convention.
    #[must_use]
    pub fn variance(&self) -> Option<f64> {
        match self.n {
            0 => None,
            1 => Some(0.0),
            n => Some(self.m2 / (n - 1) as f64),
        }
    }

    /// Sample standard deviation; see [`Self::variance`].
    #[must_use]
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }
}

/// Streaming single-quantile estimator: the P² algorithm (Jain &
/// Chlamtac, CACM 1985). Five markers track the running quantile with
/// parabolic interpolation; memory stays O(1) no matter how many values
/// stream through. Exact for the first five observations (sorted buffer),
/// approximate after — well within the Monte-Carlo sampling noise the
/// confidence bands already carry.
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights `q_i` once initialized (first five values, sorted).
    heights: [f64; 5],
    /// Actual marker positions `n_i` (1-indexed observation counts).
    positions: [f64; 5],
    /// Desired marker positions `n'_i`.
    desired: [f64; 5],
    count: u64,
}

impl P2Quantile {
    /// An estimator for the `p`-quantile (`0 < p < 1`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "require 0 < p < 1");
        Self {
            p,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            count: 0,
        }
    }

    /// Folds one value in.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let n = self.count as usize;
        if n <= 5 {
            // Initialization: keep the first five observations sorted.
            let mut i = n - 1;
            self.heights[i] = value;
            while i > 0 && self.heights[i - 1] > self.heights[i] {
                self.heights.swap(i - 1, i);
                i -= 1;
            }
            return;
        }

        // Locate the cell k with q_k <= value < q_{k+1}, clamping into the
        // extremes when the value falls outside the current markers.
        let k = if value < self.heights[0] {
            self.heights[0] = value;
            0
        } else if value >= self.heights[4] {
            self.heights[4] = value;
            3
        } else {
            (0..4)
                .rfind(|&i| self.heights[i] <= value)
                .expect("heights[0] <= value")
        };
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        let increments = [0.0, self.p / 2.0, self.p, (1.0 + self.p) / 2.0, 1.0];
        for (d, inc) in self.desired.iter_mut().zip(increments) {
            *d += inc;
        }

        // Adjust the three interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let step_up = d >= 1.0 && self.positions[i + 1] - self.positions[i] > 1.0;
            let step_down = d <= -1.0 && self.positions[i - 1] - self.positions[i] < -1.0;
            if !(step_up || step_down) {
                continue;
            }
            let d = d.signum();
            let parabolic = self.parabolic(i, d);
            self.heights[i] = if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1]
            {
                parabolic
            } else {
                self.linear(i, d)
            };
            self.positions[i] += d;
        }
    }

    /// Piecewise-parabolic (P²) height update for marker `i` moving by `d`.
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    /// Linear fallback when the parabolic prediction leaves the bracket.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Number of values folded in so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current quantile estimate; `None` while empty. Exact below six
    /// observations (interpolated from the sorted buffer), P² after.
    #[must_use]
    pub fn estimate(&self) -> Option<f64> {
        let n = self.count as usize;
        match n {
            0 => None,
            1..=5 => {
                // Exact linear-interpolated quantile over the sorted prefix.
                let rank = self.p * (n - 1) as f64;
                let lo = rank.floor() as usize;
                let hi = rank.ceil() as usize;
                let frac = rank - lo as f64;
                Some(self.heights[lo] * (1.0 - frac) + self.heights[hi.min(n - 1)] * frac)
            }
            _ => Some(self.heights[2]),
        }
    }
}

/// Eight-number digest of a streamed sample: the [`Summary`] five plus
/// the 5th/50th/95th percentile estimates that frame a 90% confidence
/// band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandedSummary {
    /// Number of values streamed.
    pub n: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for singletons).
    pub stddev: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// 5th-percentile estimate.
    pub p05: f64,
    /// Median estimate.
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
}

impl BandedSummary {
    /// Half-width of the central 90% interval, `(p95 − p05) / 2` — the
    /// "±0.8 yr" in a banded headline. Zero when the output does not vary.
    #[must_use]
    pub fn ci90_half_width(&self) -> f64 {
        (self.p95 - self.p05) / 2.0
    }
}

/// Streaming digest accumulator: Welford mean/variance, running min/max
/// and P² estimates at the 5th, 50th and 95th percentiles — everything a
/// confidence-banded comparison reports, in O(1) memory.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingStats {
    welford: Welford,
    min: f64,
    max: f64,
    p05: P2Quantile,
    p50: P2Quantile,
    p95: P2Quantile,
}

impl StreamingStats {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            welford: Welford::new(),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            p05: P2Quantile::new(0.05),
            p50: P2Quantile::new(0.50),
            p95: P2Quantile::new(0.95),
        }
    }

    /// Folds one value in.
    pub fn push(&mut self, value: f64) {
        self.welford.push(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.p05.push(value);
        self.p50.push(value);
        self.p95.push(value);
    }

    /// Number of values folded in so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.welford.count()
    }

    /// The digest; `None` while empty.
    #[must_use]
    pub fn summary(&self) -> Option<BandedSummary> {
        Some(BandedSummary {
            n: self.welford.count(),
            mean: self.welford.mean()?,
            stddev: self.welford.stddev()?,
            min: self.min,
            max: self.max,
            p05: self.p05.estimate()?,
            p50: self.p50.estimate()?,
            p95: self.p95.estimate()?,
        })
    }
}

impl Default for StreamingStats {
    fn default() -> Self {
        Self::new()
    }
}

/// Ordinary least-squares fit `y = a + b·x`; returns `(a, b)`.
///
/// Returns `None` with fewer than two points or zero x-variance.
#[must_use]
pub fn linear_fit(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-30 {
        return None;
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    Some((a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(stddev(&[1.0]), None);
        let sd = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((sd - 2.138).abs() < 1e-3);
        assert_eq!(mean_std(&[5.0]), Some((5.0, 0.0)));
    }

    #[test]
    fn summarize_digests_a_sweep() {
        assert_eq!(summarize(&[]), None);
        assert_eq!(min_max(&[]), None);
        assert_eq!(min_max(&[3.0, 1.0, 2.0]), Some((1.0, 3.0)));
        let s = summarize(&[350.0, 700.0, 1400.0]).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 350.0);
        assert_eq!(s.max, 1400.0);
        assert!((s.mean - 816.666).abs() < 1e-2);
        assert!((s.spread_ratio().unwrap() - 4.0).abs() < 1e-12);
        let single = summarize(&[5.0]).unwrap();
        assert_eq!(single.stddev, 0.0);
        let zero_min = summarize(&[0.0, 1.0]).unwrap();
        assert_eq!(zero_min.spread_ratio(), None);
        // NaN poisons the extremes, keeping them consistent with the mean.
        let (lo, hi) = min_max(&[f64::NAN, 5.0, 2.0]).unwrap();
        assert!(lo.is_nan() && hi.is_nan());
    }

    #[test]
    fn welford_matches_buffered_stats() {
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        assert_eq!(w.mean(), None);
        assert_eq!(w.stddev(), None);
        for v in values {
            w.push(v);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean().unwrap() - mean(&values).unwrap()).abs() < 1e-12);
        assert!((w.stddev().unwrap() - stddev(&values).unwrap()).abs() < 1e-12);
        let mut single = Welford::new();
        single.push(5.0);
        assert_eq!(single.stddev(), Some(0.0));
    }

    #[test]
    fn p2_is_exact_for_small_samples() {
        let mut q = P2Quantile::new(0.5);
        assert_eq!(q.estimate(), None);
        for v in [9.0, 1.0, 5.0] {
            q.push(v);
        }
        assert_eq!(q.estimate(), Some(5.0));
        let mut q25 = P2Quantile::new(0.25);
        for v in [4.0, 1.0, 2.0, 3.0] {
            q25.push(v);
        }
        // Exact interpolated 25th percentile of {1,2,3,4} at rank 0.75.
        assert_eq!(q25.estimate(), Some(1.75));
    }

    #[test]
    fn p2_tracks_exact_quantiles_at_scale() {
        // A deterministic low-discrepancy stream over (0, 1): the exact
        // p-quantile of the underlying uniform is p itself.
        let golden = 0.618_033_988_749_895_f64;
        for p in [0.05, 0.5, 0.95] {
            let mut q = P2Quantile::new(p);
            for i in 0..100_000u64 {
                q.push((i as f64 * golden).fract());
            }
            let got = q.estimate().unwrap();
            assert!((got - p).abs() < 0.01, "P2({p}) = {got}");
        }
    }

    #[test]
    #[should_panic(expected = "0 < p < 1")]
    fn p2_rejects_degenerate_quantile() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn streaming_stats_digest_a_stream() {
        let mut s = StreamingStats::new();
        assert_eq!(s.summary(), None);
        let golden = 0.618_033_988_749_895_f64;
        for i in 0..50_000u64 {
            s.push(10.0 + (i as f64 * golden).fract());
        }
        let d = s.summary().unwrap();
        assert_eq!(d.n, 50_000);
        assert!((d.mean - 10.5).abs() < 1e-3);
        // U(10, 11): stddev = 1/sqrt(12) ≈ 0.2887.
        assert!((d.stddev - 0.2887).abs() < 1e-3);
        assert!(d.min >= 10.0 && d.max < 11.0);
        assert!((d.p05 - 10.05).abs() < 0.01);
        assert!((d.p50 - 10.5).abs() < 0.01);
        assert!((d.p95 - 10.95).abs() < 0.01);
        assert!((d.ci90_half_width() - 0.45).abs() < 0.01);
    }

    #[test]
    fn streaming_stats_constant_stream_has_zero_band() {
        let mut s = StreamingStats::new();
        for _ in 0..1000 {
            s.push(2014.6);
        }
        let d = s.summary().unwrap();
        assert_eq!(d.mean, 2014.6);
        assert_eq!(d.stddev, 0.0);
        assert_eq!(d.ci90_half_width(), 0.0);
        assert_eq!((d.min, d.max), (2014.6, 2014.6));
    }

    #[test]
    fn linear_fit_recovers_line() {
        let pts: Vec<(f64, f64)> = (0..10)
            .map(|i| (f64::from(i), 3.0 + 2.0 * f64::from(i)))
            .collect();
        let (a, b) = linear_fit(&pts).unwrap();
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
        assert_eq!(linear_fit(&[(1.0, 1.0)]), None);
        assert_eq!(linear_fit(&[(1.0, 1.0), (1.0, 2.0)]), None);
    }
}
