//! Pareto-frontier computation for benefit/cost trade-off studies.
//!
//! Fig 8 of the paper plots AI inference throughput (maximize) against
//! manufacturing carbon footprint (minimize) and draws the Pareto frontier
//! for the 2017 and 2019 device cohorts. This module provides the frontier
//! computation for arbitrary point sets in that orientation.

/// A point in benefit/cost space: `benefit` is maximized (e.g. throughput),
/// `cost` is minimized (e.g. manufacturing CO₂e).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point<T> {
    /// The quantity being maximized.
    pub benefit: f64,
    /// The quantity being minimized.
    pub cost: f64,
    /// Caller payload (device name, configuration, …).
    pub tag: T,
}

impl<T> Point<T> {
    /// Creates a point.
    pub fn new(benefit: f64, cost: f64, tag: T) -> Self {
        Self { benefit, cost, tag }
    }

    /// `self` dominates `other` when it is at least as good on both axes and
    /// strictly better on one.
    #[must_use]
    pub fn dominates(&self, other: &Self) -> bool {
        (self.benefit >= other.benefit && self.cost <= other.cost)
            && (self.benefit > other.benefit || self.cost < other.cost)
    }
}

/// Computes the Pareto frontier of `points` (maximize benefit, minimize
/// cost), returned sorted by ascending cost.
///
/// Duplicate-coordinate points are all kept (none dominates the other).
///
/// ```
/// use cc_analysis::pareto::{frontier, Point};
///
/// let pts = vec![
///     Point::new(35.0, 63.0, "iPhone X"),
///     Point::new(20.0, 45.0, "Pixel 3a"),
///     Point::new(15.0, 50.0, "Pixel 3"), // dominated by Pixel 3a
/// ];
/// let front = frontier(&pts);
/// assert_eq!(front.len(), 2);
/// assert_eq!(front[0].tag, "Pixel 3a");
/// ```
pub fn frontier<T: Clone>(points: &[Point<T>]) -> Vec<Point<T>> {
    let mut front: Vec<Point<T>> = points
        .iter()
        .filter(|candidate| !points.iter().any(|other| other.dominates(candidate)))
        .cloned()
        .collect();
    front.sort_by(|a, b| {
        a.cost
            .partial_cmp(&b.cost)
            .unwrap_or(core::cmp::Ordering::Equal)
            .then(
                a.benefit
                    .partial_cmp(&b.benefit)
                    .unwrap_or(core::cmp::Ordering::Equal),
            )
    });
    front
}

/// Measures how far frontier `b` has shifted relative to frontier `a` along
/// the benefit axis: the mean ratio of `b`'s best benefit to `a`'s best
/// benefit at matching cost budgets (sampled at `b`'s frontier costs).
///
/// A value above 1 means the newer frontier delivers more benefit for the
/// same cost — the paper's observation that between 2017 and 2019 the
/// frontier "shifted primarily to the right" (more performance, not less
/// carbon).
pub fn benefit_shift<T: Clone>(a: &[Point<T>], b: &[Point<T>]) -> f64 {
    let best_at = |front: &[Point<T>], cost: f64| -> Option<f64> {
        front
            .iter()
            .filter(|p| p.cost <= cost)
            .map(|p| p.benefit)
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
    };
    let mut ratios = Vec::new();
    for p in b {
        if let (Some(nb), Some(ob)) = (best_at(b, p.cost), best_at(a, p.cost)) {
            if ob > 0.0 {
                ratios.push(nb / ob);
            }
        }
    }
    if ratios.is_empty() {
        1.0
    } else {
        ratios.iter().sum::<f64>() / ratios.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<Point<&'static str>> {
        vec![
            Point::new(4.0, 30.0, "a"),
            Point::new(8.0, 34.0, "b"),
            Point::new(12.0, 38.0, "c"),
            Point::new(10.0, 40.0, "d"), // dominated by c
            Point::new(35.0, 63.0, "e"),
            Point::new(3.0, 31.0, "f"), // dominated by a
        ]
    }

    #[test]
    fn frontier_excludes_dominated() {
        let front = frontier(&pts());
        let tags: Vec<_> = front.iter().map(|p| p.tag).collect();
        assert_eq!(tags, vec!["a", "b", "c", "e"]);
    }

    #[test]
    fn frontier_is_sorted_and_monotone() {
        let front = frontier(&pts());
        for pair in front.windows(2) {
            assert!(pair[0].cost <= pair[1].cost);
            assert!(pair[0].benefit <= pair[1].benefit);
        }
    }

    #[test]
    fn dominance_relation() {
        let a = Point::new(10.0, 5.0, ());
        let b = Point::new(8.0, 6.0, ());
        let c = Point::new(10.0, 5.0, ());
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&c), "equal points do not dominate");
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<Point<()>> = Vec::new();
        assert!(frontier(&empty).is_empty());
        let single = vec![Point::new(1.0, 1.0, ())];
        assert_eq!(frontier(&single).len(), 1);
    }

    #[test]
    fn benefit_shift_detects_rightward_movement() {
        let old = frontier(&pts());
        let mut newer = pts();
        newer.push(Point::new(70.0, 60.0, "new-flagship"));
        let newer = frontier(&newer);
        let shift = benefit_shift(&old, &newer);
        assert!(shift > 1.1, "shift {shift}");
    }

    #[test]
    fn benefit_shift_identity() {
        let front = frontier(&pts());
        let shift = benefit_shift(&front, &front);
        assert!((shift - 1.0).abs() < 1e-12);
    }
}
