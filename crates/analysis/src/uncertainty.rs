//! Monte-Carlo uncertainty propagation.
//!
//! The paper's inputs are disclosed with coarse precision (shares to a few
//! percent, intensities as national averages). This module propagates
//! triangular input distributions through an arbitrary model function and
//! summarizes the output spread — the error bars Fig 6 hints at with its
//! "one standard deviation" whiskers.

use crate::rng::{Rng, SplitMix64};

/// A triangular distribution `(low, mode, high)` — the standard choice for
/// expert-elicited LCA parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangular {
    /// Lower bound.
    pub low: f64,
    /// Most likely value.
    pub mode: f64,
    /// Upper bound.
    pub high: f64,
}

impl Triangular {
    /// Creates a distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `low <= mode <= high`.
    #[must_use]
    pub fn new(low: f64, mode: f64, high: f64) -> Self {
        assert!(low <= mode && mode <= high, "require low <= mode <= high");
        Self { low, mode, high }
    }

    /// A symmetric ±`rel` relative band around `mode`.
    #[must_use]
    pub fn around(mode: f64, rel: f64) -> Self {
        let half = mode.abs() * rel;
        Self::new(mode - half, mode, mode + half)
    }

    /// Draws one sample by inverse-CDF.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        if self.high == self.low {
            return self.mode;
        }
        let u: f64 = rng.gen_range(0.0..1.0);
        let fc = (self.mode - self.low) / (self.high - self.low);
        if u < fc {
            self.low + (u * (self.high - self.low) * (self.mode - self.low)).sqrt()
        } else {
            self.high - ((1.0 - u) * (self.high - self.low) * (self.high - self.mode)).sqrt()
        }
    }

    /// Analytical mean of the distribution.
    #[must_use]
    pub fn mean(&self) -> f64 {
        (self.low + self.mode + self.high) / 3.0
    }
}

/// Summary of a Monte-Carlo output sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McSummary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// 5th percentile.
    pub p05: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
}

/// Runs `trials` Monte-Carlo evaluations of `model` over the given input
/// distributions and summarizes the output.
///
/// `model` receives one sampled value per input, in order. Deterministic for
/// a fixed `seed`.
///
/// # Panics
///
/// Panics when `trials == 0` or `inputs` is empty.
pub fn propagate(
    inputs: &[Triangular],
    trials: u32,
    seed: u64,
    model: impl Fn(&[f64]) -> f64,
) -> McSummary {
    assert!(trials > 0, "need at least one trial");
    assert!(!inputs.is_empty(), "need at least one input");
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut outputs: Vec<f64> = Vec::with_capacity(trials as usize);
    let mut draws = vec![0.0; inputs.len()];
    for _ in 0..trials {
        for (d, dist) in draws.iter_mut().zip(inputs) {
            *d = dist.sample(&mut rng);
        }
        outputs.push(model(&draws));
    }
    outputs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
    let mean = outputs.iter().sum::<f64>() / outputs.len() as f64;
    let var =
        outputs.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (outputs.len().max(2) - 1) as f64;
    let pct = |p: f64| outputs[((outputs.len() - 1) as f64 * p).round() as usize];
    McSummary {
        mean,
        std: var.sqrt(),
        p05: pct(0.05),
        p50: pct(0.50),
        p95: pct(0.95),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangular_sampling_matches_analytical_mean() {
        let dist = Triangular::new(10.0, 20.0, 40.0);
        let summary = propagate(&[dist], 20_000, 7, |x| x[0]);
        assert!((summary.mean - dist.mean()).abs() < 0.2, "{}", summary.mean);
        assert!(summary.p05 >= 10.0 && summary.p95 <= 40.0);
        assert!(summary.p05 < summary.p50 && summary.p50 < summary.p95);
    }

    #[test]
    fn degenerate_distribution_is_exact() {
        let dist = Triangular::new(5.0, 5.0, 5.0);
        let summary = propagate(&[dist], 100, 1, |x| x[0]);
        assert_eq!(summary.mean, 5.0);
        assert_eq!(summary.std, 0.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let dist = Triangular::around(100.0, 0.2);
        let a = propagate(&[dist], 1_000, 42, |x| x[0]);
        let b = propagate(&[dist], 1_000, 42, |x| x[0]);
        assert_eq!(a, b);
        let c = propagate(&[dist], 1_000, 43, |x| x[0]);
        assert_ne!(a, c);
    }

    #[test]
    fn breakeven_uncertainty_band() {
        // Fig 10 with uncertain inputs: SoC budget +/-20%, grid +/-15%,
        // energy per image +/-25%. Breakeven = budget / (energy * grid).
        let inputs = [
            Triangular::around(24_850.0, 0.20), // g CO2e
            Triangular::around(380.0, 0.15),    // g/kWh
            Triangular::around(0.0447, 0.25),   // J/image
        ];
        let summary = propagate(&inputs, 10_000, 99, |x| {
            let budget_g = x[0];
            let grid = x[1];
            let e_kwh = x[2] / 3.6e6;
            budget_g / (e_kwh * grid)
        });
        // The central estimate stays at ~5e9 images and the 90% band stays
        // within the same order of magnitude: the paper's conclusion is
        // robust to disclosure-level uncertainty.
        assert!(summary.p50 > 3e9 && summary.p50 < 8e9, "{}", summary.p50);
        assert!(summary.p95 / summary.p05 < 4.0);
    }

    #[test]
    #[should_panic(expected = "low <= mode")]
    fn rejects_disordered_bounds() {
        let _ = Triangular::new(2.0, 1.0, 3.0);
    }
}
