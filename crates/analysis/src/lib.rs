//! # cc-analysis
//!
//! Generic analysis machinery for carbon-footprint studies: Pareto frontiers,
//! time series, growth projections, crossover (break-even) search and summary
//! statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crossover;
pub mod pareto;
pub mod projections;
pub mod rng;
pub mod series;
pub mod stats;
pub mod uncertainty;
