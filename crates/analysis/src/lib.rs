//! # cc-analysis
//!
//! Generic analysis machinery for carbon-footprint studies — the layer the
//! domain models and the sweep engine share, with no domain knowledge of
//! its own:
//!
//! * [`stats`] — summary statistics behind every sweep comparison's digest:
//!   buffered (n/mean/stddev/min/max, spread ratio) and streaming (Welford
//!   mean/variance, P² quantiles) for Monte-Carlo scale;
//! * [`dist`] — parsed `triangular`/`uniform`/`normal` distribution specs
//!   (`fab.node_nm ~ triangular(5,7,10)`) with single-draw inverse-CDF
//!   sampling;
//! * [`crossover`] — piecewise-linear break-even search, the engine behind
//!   "crosses 2017 at fleet.growth ≈ 1.47" lines;
//! * [`pareto`] — Pareto-frontier extraction for the Fig 8 efficiency
//!   analyses;
//! * [`projections`] — compound-growth series for the Fig 1 ICT outlook;
//! * [`series`] — time-series helpers;
//! * [`uncertainty`] / [`rng`] — triangular-distribution Monte-Carlo
//!   propagation on a deterministic splitmix64 generator (seeded from the
//!   scenario, so `ext-mc` is reproducible).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crossover;
pub mod dist;
pub mod pareto;
pub mod projections;
pub mod rng;
pub mod series;
pub mod stats;
pub mod uncertainty;
