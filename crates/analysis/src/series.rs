//! Year-indexed time series.
//!
//! Every longitudinal chart in the paper (Figs 1, 2, 7, 11) is a series of
//! (year, value) samples. [`YearSeries`] provides construction, lookup,
//! linear interpolation between samples, element-wise combination and growth
//! statistics.

/// A time series sampled at (not necessarily contiguous) integer years.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct YearSeries {
    samples: Vec<(u16, f64)>,
}

impl YearSeries {
    /// Creates an empty series.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a series from (year, value) pairs; the pairs are sorted by
    /// year and duplicate years keep the last value.
    #[must_use]
    pub fn from_pairs<I: IntoIterator<Item = (u16, f64)>>(pairs: I) -> Self {
        let mut samples: Vec<(u16, f64)> = pairs.into_iter().collect();
        samples.sort_by_key(|&(y, _)| y);
        samples.dedup_by_key(|&mut (y, _)| y);
        Self { samples }
    }

    /// Appends a sample, keeping the series sorted.
    pub fn push(&mut self, year: u16, value: f64) {
        match self.samples.binary_search_by_key(&year, |&(y, _)| y) {
            Ok(i) => self.samples[i].1 = value,
            Err(i) => self.samples.insert(i, (year, value)),
        }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The sampled years, ascending.
    pub fn years(&self) -> impl Iterator<Item = u16> + '_ {
        self.samples.iter().map(|&(y, _)| y)
    }

    /// The sampled values, in year order.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.samples.iter().map(|&(_, v)| v)
    }

    /// Iterates over (year, value) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u16, f64)> + '_ {
        self.samples.iter().copied()
    }

    /// Exact lookup.
    #[must_use]
    pub fn get(&self, year: u16) -> Option<f64> {
        self.samples
            .binary_search_by_key(&year, |&(y, _)| y)
            .ok()
            .map(|i| self.samples[i].1)
    }

    /// Value at `year`, linearly interpolating between samples. Years outside
    /// the sampled range clamp to the nearest endpoint.
    ///
    /// Returns `None` for an empty series.
    #[must_use]
    pub fn interpolate(&self, year: f64) -> Option<f64> {
        let (first, last) = (self.samples.first()?, self.samples.last()?);
        if year <= f64::from(first.0) {
            return Some(first.1);
        }
        if year >= f64::from(last.0) {
            return Some(last.1);
        }
        let idx = self.samples.partition_point(|&(y, _)| f64::from(y) <= year);
        let (y0, v0) = self.samples[idx - 1];
        let (y1, v1) = self.samples[idx];
        let t = (year - f64::from(y0)) / (f64::from(y1) - f64::from(y0));
        Some(v0 + (v1 - v0) * t)
    }

    /// Element-wise combination with another series over the years both
    /// sample.
    #[must_use]
    pub fn zip_with(&self, other: &Self, f: impl Fn(f64, f64) -> f64) -> Self {
        let samples = self
            .samples
            .iter()
            .filter_map(|&(y, v)| other.get(y).map(|w| (y, f(v, w))))
            .collect();
        Self { samples }
    }

    /// Map over values, preserving years.
    #[must_use]
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Self {
        Self {
            samples: self.samples.iter().map(|&(y, v)| (y, f(v))).collect(),
        }
    }

    /// Total growth factor from the first to the last sample.
    ///
    /// Returns `None` with fewer than two samples or a zero first sample.
    #[must_use]
    pub fn total_growth(&self) -> Option<f64> {
        let first = self.samples.first()?.1;
        let last = self.samples.last()?.1;
        if self.samples.len() < 2 || first == 0.0 {
            None
        } else {
            Some(last / first)
        }
    }

    /// Compound annual growth rate between the first and last samples.
    #[must_use]
    pub fn cagr(&self) -> Option<f64> {
        let (y0, v0) = *self.samples.first()?;
        let (y1, v1) = *self.samples.last()?;
        if y1 == y0 || v0 <= 0.0 || v1 <= 0.0 {
            return None;
        }
        Some((v1 / v0).powf(1.0 / f64::from(y1 - y0)) - 1.0)
    }

    /// Whether values never decrease year over year.
    #[must_use]
    pub fn is_monotone_nondecreasing(&self) -> bool {
        self.samples.windows(2).all(|w| w[1].1 >= w[0].1)
    }

    /// Whether values never increase year over year.
    #[must_use]
    pub fn is_monotone_nonincreasing(&self) -> bool {
        self.samples.windows(2).all(|w| w[1].1 <= w[0].1)
    }

    /// The year of the maximum value (first occurrence).
    #[must_use]
    pub fn argmax(&self) -> Option<u16> {
        self.samples
            .iter()
            .fold(None::<(u16, f64)>, |acc, &(y, v)| match acc {
                Some((_, best)) if best >= v => acc,
                _ => Some((y, v)),
            })
            .map(|(y, _)| y)
    }
}

impl FromIterator<(u16, f64)> for YearSeries {
    fn from_iter<I: IntoIterator<Item = (u16, f64)>>(iter: I) -> Self {
        Self::from_pairs(iter)
    }
}

impl Extend<(u16, f64)> for YearSeries {
    fn extend<I: IntoIterator<Item = (u16, f64)>>(&mut self, iter: I) {
        for (y, v) in iter {
            self.push(y, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> YearSeries {
        YearSeries::from_pairs([(2013, 1.0), (2015, 3.0), (2019, 5.0)])
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let s = YearSeries::from_pairs([(2019, 5.0), (2013, 1.0), (2013, 1.5), (2015, 3.0)]);
        let years: Vec<_> = s.years().collect();
        assert_eq!(years, vec![2013, 2015, 2019]);
    }

    #[test]
    fn push_overwrites_and_inserts() {
        let mut s = series();
        s.push(2014, 2.0);
        s.push(2015, 3.5);
        assert_eq!(s.get(2014), Some(2.0));
        assert_eq!(s.get(2015), Some(3.5));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn interpolation_and_clamping() {
        let s = series();
        assert_eq!(s.interpolate(2014.0), Some(2.0));
        assert_eq!(s.interpolate(2010.0), Some(1.0));
        assert_eq!(s.interpolate(2030.0), Some(5.0));
        assert_eq!(s.interpolate(2017.0), Some(4.0));
        assert_eq!(YearSeries::new().interpolate(2015.0), None);
    }

    #[test]
    fn growth_metrics() {
        let s = series();
        assert_eq!(s.total_growth(), Some(5.0));
        let cagr = s.cagr().unwrap();
        assert!((cagr - (5.0f64.powf(1.0 / 6.0) - 1.0)).abs() < 1e-12);
        assert!(YearSeries::from_pairs([(2010, 1.0)])
            .total_growth()
            .is_none());
    }

    #[test]
    fn monotonicity_and_argmax() {
        assert!(series().is_monotone_nondecreasing());
        let peak = YearSeries::from_pairs([(2014, 1.0), (2016, 9.0), (2019, 0.5)]);
        assert!(!peak.is_monotone_nondecreasing());
        assert!(!peak.is_monotone_nonincreasing());
        assert_eq!(peak.argmax(), Some(2016));
    }

    #[test]
    fn zip_and_map() {
        let energy = YearSeries::from_pairs([(2013, 10.0), (2014, 20.0)]);
        let intensity = YearSeries::from_pairs([(2013, 2.0), (2014, 0.5), (2015, 9.0)]);
        let carbon = energy.zip_with(&intensity, |e, i| e * i);
        assert_eq!(carbon.get(2013), Some(20.0));
        assert_eq!(carbon.get(2014), Some(10.0));
        assert_eq!(carbon.get(2015), None);
        assert_eq!(carbon.map(|v| v / 10.0).get(2013), Some(2.0));
    }

    #[test]
    fn collect_and_extend() {
        let mut s: YearSeries = [(2010, 1.0)].into_iter().collect();
        s.extend([(2011, 2.0)]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }
}
