//! Property-based tests for [`DistSpec`]: `Display` is documented as the
//! canonical round-trippable text (`docs/PROTOCOL.md` echoes it and served
//! requests intern on it), so `parse ∘ to_string` must be the identity on
//! every representable spec, not just the handful of literals the unit
//! tests pin.

use cc_analysis::dist::DistSpec;
use proptest::prelude::*;

/// Arbitrary but bounded magnitudes; the parser only requires finiteness.
fn param() -> impl Strategy<Value = f64> {
    -1e6..1e6f64
}

/// Non-negative widths used to build ordered bounds.
fn width() -> impl Strategy<Value = f64> {
    0.0..1e5f64
}

proptest! {
    #[test]
    fn triangular_round_trips(low in param(), d1 in width(), d2 in width()) {
        let mode = low + d1;
        let high = mode + d2;
        // Tiny widths can round away entirely (1e6 + 1e-12 == 1e6); the
        // parser rightly rejects low == high, so skip those draws.
        prop_assume!(low < high);
        let spec = DistSpec::Triangular { low, mode, high };
        prop_assert_eq!(DistSpec::parse(&spec.to_string()).unwrap(), spec);
    }

    #[test]
    fn uniform_round_trips(low in param(), d in width()) {
        let high = low + d;
        prop_assume!(low < high);
        let spec = DistSpec::Uniform { low, high };
        prop_assert_eq!(DistSpec::parse(&spec.to_string()).unwrap(), spec);
    }

    #[test]
    fn normal_round_trips(mu in param(), sigma in 1e-6..1e6f64) {
        let spec = DistSpec::Normal { mu, sigma };
        prop_assert_eq!(DistSpec::parse(&spec.to_string()).unwrap(), spec);
    }

    #[test]
    fn parsing_ignores_interior_whitespace(low in param(), d in width()) {
        let high = low + d;
        prop_assume!(low < high);
        let spec = DistSpec::Uniform { low, high };
        let padded = format!("  uniform ( {low} , {high} )  ");
        prop_assert_eq!(DistSpec::parse(&padded).unwrap(), spec);
    }

    #[test]
    fn central_lies_inside_bounded_supports(low in param(), d1 in width(), d2 in width()) {
        let mode = low + d1;
        let high = mode + d2;
        prop_assume!(low < high);
        let tri = DistSpec::Triangular { low, mode, high };
        prop_assert!(tri.central() >= low && tri.central() <= high);
        let uni = DistSpec::Uniform { low, high };
        prop_assert!(uni.central() >= low && uni.central() <= high);
    }
}
