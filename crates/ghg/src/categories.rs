//! The fifteen GHG Protocol Scope 3 categories, with the paper's
//! capex/opex interpretation for technology companies.

/// A GHG Protocol Scope 3 category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scope3Cat {
    /// 1. Purchased goods and services.
    PurchasedGoods,
    /// 2. Capital goods (servers, infrastructure, construction).
    CapitalGoods,
    /// 3. Fuel- and energy-related activities.
    FuelAndEnergy,
    /// 4. Upstream transportation and distribution.
    UpstreamTransport,
    /// 5. Waste generated in operations.
    Waste,
    /// 6. Business travel.
    BusinessTravel,
    /// 7. Employee commuting.
    Commuting,
    /// 8. Upstream leased assets.
    UpstreamLeased,
    /// 9. Downstream transportation and distribution.
    DownstreamTransport,
    /// 10. Processing of sold products.
    Processing,
    /// 11. Use of sold products (a mobile vendor's downstream opex).
    UseOfSoldProducts,
    /// 12. End-of-life treatment of sold products.
    EndOfLife,
    /// 13. Downstream leased assets.
    DownstreamLeased,
    /// 14. Franchises.
    Franchises,
    /// 15. Investments.
    Investments,
}

impl Scope3Cat {
    /// All fifteen categories in protocol order.
    pub const ALL: [Self; 15] = [
        Self::PurchasedGoods,
        Self::CapitalGoods,
        Self::FuelAndEnergy,
        Self::UpstreamTransport,
        Self::Waste,
        Self::BusinessTravel,
        Self::Commuting,
        Self::UpstreamLeased,
        Self::DownstreamTransport,
        Self::Processing,
        Self::UseOfSoldProducts,
        Self::EndOfLife,
        Self::DownstreamLeased,
        Self::Franchises,
        Self::Investments,
    ];

    /// Whether the category is upstream (1–8) or downstream (9–15) in the
    /// protocol's taxonomy (Fig 3).
    #[must_use]
    pub fn is_upstream(self) -> bool {
        matches!(
            self,
            Self::PurchasedGoods
                | Self::CapitalGoods
                | Self::FuelAndEnergy
                | Self::UpstreamTransport
                | Self::Waste
                | Self::BusinessTravel
                | Self::Commuting
                | Self::UpstreamLeased
        )
    }

    /// The paper's capex classification: hardware, infrastructure,
    /// construction and logistics are capex-related; use of sold products is
    /// opex-related; people-related categories are neither hardware capex nor
    /// operational energy (grouped as "other" in Fig 12).
    #[must_use]
    pub fn is_capex_related(self) -> bool {
        matches!(
            self,
            Self::PurchasedGoods
                | Self::CapitalGoods
                | Self::UpstreamTransport
                | Self::DownstreamTransport
                | Self::EndOfLife
        )
    }

    /// Protocol category number (1-based).
    #[must_use]
    pub fn number(self) -> u8 {
        Self::ALL.iter().position(|&c| c == self).unwrap() as u8 + 1
    }

    /// Human-readable label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::PurchasedGoods => "Purchased goods and services",
            Self::CapitalGoods => "Capital goods",
            Self::FuelAndEnergy => "Fuel- and energy-related activities",
            Self::UpstreamTransport => "Upstream transportation",
            Self::Waste => "Waste generated in operations",
            Self::BusinessTravel => "Business travel",
            Self::Commuting => "Employee commuting",
            Self::UpstreamLeased => "Upstream leased assets",
            Self::DownstreamTransport => "Downstream transportation",
            Self::Processing => "Processing of sold products",
            Self::UseOfSoldProducts => "Use of sold products",
            Self::EndOfLife => "End-of-life treatment of sold products",
            Self::DownstreamLeased => "Downstream leased assets",
            Self::Franchises => "Franchises",
            Self::Investments => "Investments",
        }
    }
}

impl core::fmt::Display for Scope3Cat {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_categories_numbered_in_order() {
        assert_eq!(Scope3Cat::ALL.len(), 15);
        for (i, c) in Scope3Cat::ALL.iter().enumerate() {
            assert_eq!(c.number() as usize, i + 1);
        }
    }

    #[test]
    fn upstream_split_is_eight_seven() {
        let upstream = Scope3Cat::ALL.iter().filter(|c| c.is_upstream()).count();
        assert_eq!(upstream, 8);
    }

    #[test]
    fn capital_goods_is_capex_use_is_not() {
        assert!(Scope3Cat::CapitalGoods.is_capex_related());
        assert!(Scope3Cat::PurchasedGoods.is_capex_related());
        assert!(!Scope3Cat::UseOfSoldProducts.is_capex_related());
        assert!(!Scope3Cat::BusinessTravel.is_capex_related());
    }

    #[test]
    fn display() {
        assert_eq!(Scope3Cat::CapitalGoods.to_string(), "Capital goods");
    }
}
