//! GHG Protocol scopes (Fig 3) and their meaning for the three kinds of
//! technology company in Table I.

/// The three GHG Protocol emission scopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scope {
    /// Direct emissions: fuel combustion, refrigerants, and — dominant for
    /// chip manufacturers — burning PFCs, chemicals and gases.
    Scope1,
    /// Indirect emissions from purchased energy and heat.
    Scope2,
    /// All other supply-chain emissions, upstream (capital and purchased
    /// goods, construction) and downstream (use and recycling of sold goods).
    Scope3,
}

impl Scope {
    /// All scopes.
    pub const ALL: [Self; 3] = [Self::Scope1, Self::Scope2, Self::Scope3];

    /// Human-readable label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Scope1 => "Scope 1",
            Self::Scope2 => "Scope 2",
            Self::Scope3 => "Scope 3",
        }
    }
}

impl core::fmt::Display for Scope {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// The three company archetypes of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompanyKind {
    /// Semiconductor manufacturer (Intel, TSMC, GlobalFoundries).
    ChipManufacturer,
    /// Mobile-device vendor (Apple, Google, Huawei).
    MobileVendor,
    /// Data-center operator (Facebook, Google, Microsoft).
    DatacenterOperator,
}

impl CompanyKind {
    /// All archetypes, in Table I row order.
    pub const ALL: [Self; 3] = [
        Self::ChipManufacturer,
        Self::MobileVendor,
        Self::DatacenterOperator,
    ];

    /// The salient emissions for a scope, per Table I.
    #[must_use]
    pub fn salient_emissions(self, scope: Scope) -> &'static str {
        match (self, scope) {
            (Self::ChipManufacturer, Scope::Scope1) => "Burning PFCs, chemicals, gases",
            (Self::ChipManufacturer, Scope::Scope2) => "Energy for fabrication",
            (Self::ChipManufacturer, Scope::Scope3) => "Raw materials, hardware use",
            (Self::MobileVendor, Scope::Scope1) => "Natural gas, diesel",
            (Self::MobileVendor, Scope::Scope2) => "Energy for offices",
            (Self::MobileVendor, Scope::Scope3) => "Chip manufacturing, hardware use",
            (Self::DatacenterOperator, Scope::Scope1) => "Natural gas, diesel",
            (Self::DatacenterOperator, Scope::Scope2) => "Energy for data centers",
            (Self::DatacenterOperator, Scope::Scope3) => {
                "Server-hardware manufacturing, construction"
            }
        }
    }

    /// Whether Scope 1 is a large share of the archetype's operational
    /// footprint ("it accounts for over half the operational carbon output
    /// from Global Foundries, Intel, and TSMC").
    #[must_use]
    pub fn scope1_dominates_operations(self) -> bool {
        matches!(self, Self::ChipManufacturer)
    }

    /// Human-readable label, matching Table I.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::ChipManufacturer => "Chip manufacturer",
            Self::MobileVendor => "Mobile-device vendor",
            Self::DatacenterOperator => "Data-center operator",
        }
    }
}

impl core::fmt::Display for CompanyKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_is_fully_populated() {
        for kind in CompanyKind::ALL {
            for scope in Scope::ALL {
                assert!(!kind.salient_emissions(scope).is_empty());
            }
        }
    }

    #[test]
    fn pfcs_belong_to_chip_manufacturers() {
        assert!(CompanyKind::ChipManufacturer
            .salient_emissions(Scope::Scope1)
            .contains("PFCs"));
        assert!(CompanyKind::ChipManufacturer.scope1_dominates_operations());
        assert!(!CompanyKind::MobileVendor.scope1_dominates_operations());
    }

    #[test]
    fn labels() {
        assert_eq!(Scope::Scope3.to_string(), "Scope 3");
        assert_eq!(
            CompanyKind::DatacenterOperator.to_string(),
            "Data-center operator"
        );
    }
}
