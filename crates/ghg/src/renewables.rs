//! Renewable-energy procurement: power-purchase-agreement (PPA) portfolios
//! and the resulting market-based carbon intensity.
//!
//! "Around 2013, Facebook and Google began procuring renewable energy to
//! reduce operational carbon emissions. These purchases decreased their
//! operational carbon output even though their energy consumption continued
//! to increase" (§IV-B).

use cc_data::energy_sources::EnergySource;
use cc_units::{CarbonIntensity, CarbonMass, Energy};

/// One power purchase agreement: a yearly energy volume from one source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ppa {
    /// Contracted generation source.
    pub source: EnergySource,
    /// Contracted annual energy.
    pub annual_energy: Energy,
}

/// A portfolio of PPAs held against a location grid.
///
/// ```
/// use cc_ghg::PpaPortfolio;
/// use cc_data::energy_sources::EnergySource;
/// use cc_units::{Energy, CarbonIntensity};
///
/// let mut portfolio = PpaPortfolio::new(CarbonIntensity::from_g_per_kwh(380.0));
/// portfolio.contract(EnergySource::Wind, Energy::from_gwh(300.0));
/// portfolio.contract(EnergySource::Solar, Energy::from_gwh(100.0));
///
/// // A 500 GWh/year facility: 400 GWh covered, 100 GWh residual grid.
/// let intensity = portfolio.market_intensity(Energy::from_gwh(500.0));
/// assert!(intensity.as_g_per_kwh() < 100.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PpaPortfolio {
    grid: CarbonIntensity,
    contracts: Vec<Ppa>,
}

impl PpaPortfolio {
    /// Creates an empty portfolio against the given location grid.
    #[must_use]
    pub fn new(grid: CarbonIntensity) -> Self {
        Self {
            grid,
            contracts: Vec::new(),
        }
    }

    /// Adds a contract.
    pub fn contract(&mut self, source: EnergySource, annual_energy: Energy) -> &mut Self {
        self.contracts.push(Ppa {
            source,
            annual_energy,
        });
        self
    }

    /// The contracts held.
    #[must_use]
    pub fn contracts(&self) -> &[Ppa] {
        &self.contracts
    }

    /// Total contracted annual energy.
    #[must_use]
    pub fn contracted_energy(&self) -> Energy {
        self.contracts.iter().map(|p| p.annual_energy).sum()
    }

    /// Fraction of `demand` covered by contracts (capped at 1).
    #[must_use]
    pub fn coverage(&self, demand: Energy) -> f64 {
        if demand <= Energy::ZERO {
            return 1.0;
        }
        (self.contracted_energy() / demand).min(1.0)
    }

    /// Market-based carbon for an annual `demand`: contracted energy at the
    /// contracted sources' intensities (allocated proportionally when
    /// over-subscribed), residual demand at the location grid.
    #[must_use]
    pub fn market_carbon(&self, demand: Energy) -> CarbonMass {
        let contracted = self.contracted_energy();
        if demand <= Energy::ZERO {
            return CarbonMass::ZERO;
        }
        // Scale contract allocation down if contracts exceed demand.
        let alloc = if contracted > demand {
            demand / contracted
        } else {
            1.0
        };
        let green: CarbonMass = self
            .contracts
            .iter()
            .map(|p| (p.annual_energy * alloc) * p.source.carbon_intensity())
            .sum();
        let residual = (demand - contracted * alloc).max(Energy::ZERO);
        green + residual * self.grid
    }

    /// Location-based carbon for `demand`: everything at the location grid.
    #[must_use]
    pub fn location_carbon(&self, demand: Energy) -> CarbonMass {
        demand.max(Energy::ZERO) * self.grid
    }

    /// Effective market-based intensity for `demand`.
    #[must_use]
    pub fn market_intensity(&self, demand: Energy) -> CarbonIntensity {
        if demand <= Energy::ZERO {
            return CarbonIntensity::ZERO;
        }
        self.market_carbon(demand) / demand
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us_portfolio() -> PpaPortfolio {
        PpaPortfolio::new(CarbonIntensity::from_g_per_kwh(380.0))
    }

    #[test]
    fn empty_portfolio_is_location_based() {
        let p = us_portfolio();
        let demand = Energy::from_gwh(100.0);
        assert_eq!(p.market_carbon(demand), p.location_carbon(demand));
        assert_eq!(p.market_intensity(demand).as_g_per_kwh(), 380.0);
        assert_eq!(p.coverage(demand), 0.0);
    }

    #[test]
    fn full_wind_coverage_approaches_zero() {
        let mut p = us_portfolio();
        p.contract(EnergySource::Wind, Energy::from_gwh(100.0));
        let demand = Energy::from_gwh(100.0);
        assert_eq!(p.coverage(demand), 1.0);
        assert!((p.market_intensity(demand).as_g_per_kwh() - 11.0).abs() < 1e-9);
        // Location-based is unchanged: the gap is the Fig 11 green-vs-red gap.
        assert!(p.location_carbon(demand) / p.market_carbon(demand) > 30.0);
    }

    #[test]
    fn partial_coverage_blends() {
        let mut p = us_portfolio();
        p.contract(EnergySource::Solar, Energy::from_gwh(50.0));
        let demand = Energy::from_gwh(100.0);
        // 50% at 41, 50% at 380 => 210.5.
        assert!((p.market_intensity(demand).as_g_per_kwh() - 210.5).abs() < 1e-9);
        assert_eq!(p.coverage(demand), 0.5);
    }

    #[test]
    fn oversubscription_does_not_go_negative() {
        let mut p = us_portfolio();
        p.contract(EnergySource::Wind, Energy::from_gwh(500.0));
        let demand = Energy::from_gwh(100.0);
        assert_eq!(p.coverage(demand), 1.0);
        assert!((p.market_intensity(demand).as_g_per_kwh() - 11.0).abs() < 1e-9);
        assert!(p.market_carbon(demand) >= CarbonMass::ZERO);
    }

    #[test]
    fn mixed_portfolio_weights_by_energy() {
        let mut p = us_portfolio();
        p.contract(EnergySource::Wind, Energy::from_gwh(300.0));
        p.contract(EnergySource::Solar, Energy::from_gwh(100.0));
        let demand = Energy::from_gwh(400.0);
        // (300*11 + 100*41) / 400 = 18.5 g/kWh.
        assert!((p.market_intensity(demand).as_g_per_kwh() - 18.5).abs() < 1e-9);
        assert_eq!(p.contracts().len(), 2);
    }

    #[test]
    fn zero_demand_is_harmless() {
        let p = us_portfolio();
        assert_eq!(p.market_carbon(Energy::ZERO), CarbonMass::ZERO);
        assert_eq!(p.market_intensity(Energy::ZERO), CarbonIntensity::ZERO);
        assert_eq!(p.coverage(Energy::ZERO), 1.0);
    }
}
