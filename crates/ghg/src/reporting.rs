//! Sustainability-report rendering: turn a [`CorporateInventory`] into the
//! disclosure rows the paper's Fig 11 sources publish.

use crate::inventory::{CorporateInventory, Scope2Method};
use cc_units::CarbonMass;

/// One disclosure line of a rendered report.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportLine {
    /// Disclosure label (e.g. `"Scope 2 (market-based)"`).
    pub label: String,
    /// Reported emissions.
    pub emissions: CarbonMass,
}

/// A rendered sustainability report for one period.
#[derive(Debug, Clone, PartialEq)]
pub struct SustainabilityReport {
    /// Organization name.
    pub organization: String,
    /// Reporting year.
    pub year: u16,
    /// Disclosure lines in standard order.
    pub lines: Vec<ReportLine>,
}

impl SustainabilityReport {
    /// Renders an inventory into the standard five-line disclosure.
    #[must_use]
    pub fn from_inventory(
        organization: impl Into<String>,
        year: u16,
        inventory: &CorporateInventory,
    ) -> Self {
        let lines = vec![
            ReportLine {
                label: "Scope 1".into(),
                emissions: inventory.scope1(),
            },
            ReportLine {
                label: "Scope 2 (location-based)".into(),
                emissions: inventory.scope2(Scope2Method::LocationBased),
            },
            ReportLine {
                label: "Scope 2 (market-based)".into(),
                emissions: inventory.scope2(Scope2Method::MarketBased),
            },
            ReportLine {
                label: "Scope 3".into(),
                emissions: inventory.scope3(),
            },
            ReportLine {
                label: "Total (market-based)".into(),
                emissions: inventory.total(Scope2Method::MarketBased),
            },
        ];
        Self {
            organization: organization.into(),
            year,
            lines,
        }
    }

    /// Looks up a line by label.
    #[must_use]
    pub fn line(&self, label: &str) -> Option<&ReportLine> {
        self.lines.iter().find(|l| l.label == label)
    }

    /// The headline capex-vs-opex sentence the paper derives from such
    /// reports.
    #[must_use]
    pub fn headline(&self) -> String {
        let opex = self
            .line("Scope 1")
            .map(|l| l.emissions)
            .unwrap_or(CarbonMass::ZERO)
            + self
                .line("Scope 2 (market-based)")
                .map(|l| l.emissions)
                .unwrap_or(CarbonMass::ZERO);
        let capex = self
            .line("Scope 3")
            .map(|l| l.emissions)
            .unwrap_or(CarbonMass::ZERO);
        if opex.as_grams() > 0.0 {
            format!(
                "{} {}: supply-chain (capex) emissions are {:.0}x operational (opex) emissions",
                self.organization,
                self.year,
                capex / opex
            )
        } else {
            format!(
                "{} {}: operations are fully decarbonized; all emissions are supply-chain",
                self.organization, self.year
            )
        }
    }
}

impl core::fmt::Display for SustainabilityReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "{} — {} GHG disclosure", self.organization, self.year)?;
        for line in &self.lines {
            writeln!(f, "  {:<26} {}", line.label, line.emissions)?;
        }
        write!(f, "  {}", self.headline())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fb2019() -> SustainabilityReport {
        let inv = CorporateInventory::from_scope_year(
            cc_data::corporate::year_of(&cc_data::corporate::FACEBOOK, 2019).unwrap(),
        );
        SustainabilityReport::from_inventory("Facebook", 2019, &inv)
    }

    #[test]
    fn five_standard_lines() {
        let report = fb2019();
        assert_eq!(report.lines.len(), 5);
        assert!(report.line("Scope 3").is_some());
        assert!(report.line("Scope 4").is_none());
    }

    #[test]
    fn headline_reproduces_the_papers_ratio() {
        let report = fb2019();
        let headline = report.headline();
        assert!(
            headline.contains("19x") || headline.contains("20x"),
            "{headline}"
        );
    }

    #[test]
    fn display_renders_all_lines() {
        let text = fb2019().to_string();
        assert!(text.contains("Scope 2 (market-based)"));
        assert!(text.contains("Facebook"));
    }

    #[test]
    fn zero_opex_headline() {
        let inv = CorporateInventory::builder()
            .scope3(CarbonMass::from_mt(1.0))
            .build();
        let report = SustainabilityReport::from_inventory("GreenCo", 2026, &inv);
        assert!(report.headline().contains("fully decarbonized"));
    }
}
