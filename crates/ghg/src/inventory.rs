//! Corporate GHG inventories: per-scope totals with location- and
//! market-based Scope 2, and the paper's opex/capex roll-up.

use crate::scope::Scope;
use cc_units::{CarbonMass, Ratio};

/// Which Scope 2 accounting method to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scope2Method {
    /// Location-based: the local grid's average mix ("often a mix of brown
    /// and green sources").
    LocationBased,
    /// Market-based: the energy the company "purposefully chose or
    /// contracted — typically solar, hydroelectric, wind".
    MarketBased,
}

/// One reporting period of a corporate GHG inventory.
///
/// ```
/// use cc_ghg::{CorporateInventory, Scope2Method};
/// use cc_units::CarbonMass;
///
/// // Facebook 2019 (Fig 11).
/// let fb = CorporateInventory::builder()
///     .scope1(CarbonMass::from_mt(0.046))
///     .scope2_location(CarbonMass::from_mt(2.2))
///     .scope2_market(CarbonMass::from_mt(0.252))
///     .scope3(CarbonMass::from_mt(5.8))
///     .build();
/// let ratio = fb.scope3() / fb.scope2(Scope2Method::MarketBased);
/// assert!((ratio - 23.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CorporateInventory {
    scope1: CarbonMass,
    scope2_location: CarbonMass,
    scope2_market: CarbonMass,
    scope3: CarbonMass,
}

impl CorporateInventory {
    /// Starts a builder with all scopes zero.
    #[must_use]
    pub fn builder() -> CorporateInventoryBuilder {
        CorporateInventoryBuilder::default()
    }

    /// Creates an inventory from a `cc-data` scope-series year.
    #[must_use]
    pub fn from_scope_year(year: &cc_data::corporate::ScopeYear) -> Self {
        Self {
            scope1: CarbonMass::from_mt(year.scope1_mt),
            scope2_location: CarbonMass::from_mt(year.scope2_location_mt),
            scope2_market: CarbonMass::from_mt(year.scope2_market_mt),
            scope3: CarbonMass::from_mt(year.scope3_mt),
        }
    }

    /// Scope 1 emissions.
    #[must_use]
    pub fn scope1(&self) -> CarbonMass {
        self.scope1
    }

    /// Scope 2 emissions under the requested method.
    #[must_use]
    pub fn scope2(&self, method: Scope2Method) -> CarbonMass {
        match method {
            Scope2Method::LocationBased => self.scope2_location,
            Scope2Method::MarketBased => self.scope2_market,
        }
    }

    /// Scope 3 emissions.
    #[must_use]
    pub fn scope3(&self) -> CarbonMass {
        self.scope3
    }

    /// Emissions for a scope (Scope 2 under the given method).
    #[must_use]
    pub fn scope(&self, scope: Scope, method: Scope2Method) -> CarbonMass {
        match scope {
            Scope::Scope1 => self.scope1,
            Scope::Scope2 => self.scope2(method),
            Scope::Scope3 => self.scope3,
        }
    }

    /// Total reported footprint under the given Scope 2 method.
    #[must_use]
    pub fn total(&self, method: Scope2Method) -> CarbonMass {
        self.scope1 + self.scope2(method) + self.scope3
    }

    /// Opex-related emissions per the paper: Scope 1 + Scope 2.
    #[must_use]
    pub fn opex(&self, method: Scope2Method) -> CarbonMass {
        self.scope1 + self.scope2(method)
    }

    /// Capex-related emissions per the paper: Scope 3 (dominated by
    /// construction and hardware).
    #[must_use]
    pub fn capex(&self) -> CarbonMass {
        self.scope3
    }

    /// Capex share of the total under the given Scope 2 method — the Fig 2
    /// pie slices.
    #[must_use]
    pub fn capex_share(&self, method: Scope2Method) -> Ratio {
        Ratio::from_fraction(self.capex() / self.total(method))
    }

    /// Avoided Scope 2 emissions from renewable procurement: location-based
    /// minus market-based.
    #[must_use]
    pub fn renewable_savings(&self) -> CarbonMass {
        self.scope2_location - self.scope2_market
    }
}

impl core::fmt::Display for CorporateInventory {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "S1 {} | S2 loc {} / mkt {} | S3 {}",
            self.scope1, self.scope2_location, self.scope2_market, self.scope3
        )
    }
}

/// Builder for [`CorporateInventory`].
#[derive(Debug, Clone, Default)]
pub struct CorporateInventoryBuilder {
    inventory: CorporateInventory,
}

impl CorporateInventoryBuilder {
    /// Sets Scope 1 emissions.
    pub fn scope1(&mut self, carbon: CarbonMass) -> &mut Self {
        self.inventory.scope1 = carbon;
        self
    }

    /// Sets location-based Scope 2 emissions.
    pub fn scope2_location(&mut self, carbon: CarbonMass) -> &mut Self {
        self.inventory.scope2_location = carbon;
        self
    }

    /// Sets market-based Scope 2 emissions.
    pub fn scope2_market(&mut self, carbon: CarbonMass) -> &mut Self {
        self.inventory.scope2_market = carbon;
        self
    }

    /// Sets Scope 3 emissions.
    pub fn scope3(&mut self, carbon: CarbonMass) -> &mut Self {
        self.inventory.scope3 = carbon;
        self
    }

    /// Finishes the build.
    #[must_use]
    pub fn build(&self) -> CorporateInventory {
        self.inventory
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fb2019() -> CorporateInventory {
        CorporateInventory::from_scope_year(
            cc_data::corporate::year_of(&cc_data::corporate::FACEBOOK, 2019).unwrap(),
        )
    }

    #[test]
    fn scope_accessors() {
        let inv = fb2019();
        assert!((inv.scope(Scope::Scope3, Scope2Method::MarketBased).as_mt() - 5.8).abs() < 1e-12);
        assert!(inv.scope2(Scope2Method::LocationBased) > inv.scope2(Scope2Method::MarketBased));
    }

    #[test]
    fn opex_capex_rollup() {
        let inv = fb2019();
        assert!((inv.opex(Scope2Method::MarketBased).as_mt() - 0.298).abs() < 1e-9);
        assert_eq!(inv.capex().as_mt(), 5.8);
        // Capex dominates overwhelmingly under market-based accounting.
        assert!(inv.capex_share(Scope2Method::MarketBased).as_percent() > 90.0);
        // And less so under the location-based counterfactual.
        assert!(
            inv.capex_share(Scope2Method::LocationBased)
                < inv.capex_share(Scope2Method::MarketBased)
        );
    }

    #[test]
    fn renewable_savings_positive_for_green_buyers() {
        let inv = fb2019();
        assert!(inv.renewable_savings() > CarbonMass::ZERO);
        assert!((inv.renewable_savings().as_mt() - (2.2 - 0.252)).abs() < 1e-9);
    }

    #[test]
    fn builder_round_trip() {
        let inv = CorporateInventory::builder()
            .scope1(CarbonMass::from_mt(0.08))
            .scope2_location(CarbonMass::from_mt(5.0))
            .scope2_market(CarbonMass::from_mt(0.684))
            .scope3(CarbonMass::from_mt(14.0))
            .build();
        let ratio = inv.scope3() / inv.scope2(Scope2Method::MarketBased);
        assert!((ratio - 20.47).abs() < 0.1, "Google 2018: ~21x");
        assert!(inv.to_string().contains("S3"));
    }
}
