//! # cc-ghg
//!
//! GHG Protocol corporate carbon accounting, as the paper describes it in
//! §II-A: Scope 1 (direct), Scope 2 (purchased energy, with location- and
//! market-based variants) and Scope 3 (upstream/downstream supply chain),
//! plus renewable-procurement (PPA) portfolios and the opex/capex mapping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod categories;
pub mod inventory;
pub mod renewables;
pub mod reporting;
pub mod scope;

pub use inventory::{CorporateInventory, CorporateInventoryBuilder, Scope2Method};
pub use renewables::PpaPortfolio;
pub use scope::Scope;
