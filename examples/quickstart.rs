//! Quickstart: compute and decompose the carbon footprint of a device.
//!
//! Run with `cargo run --example quickstart`.

use chasing_carbon::core::CarbonDecomposition;
use chasing_carbon::lca::{Footprint, UsePhase};
use chasing_carbon::prelude::*;

fn main() {
    // 1. Pull a published product LCA from the embedded dataset.
    let iphone11 = chasing_carbon::data::devices::find("iPhone 11").expect("dataset");
    let footprint = Footprint::from_product_lca(iphone11);
    println!("iPhone 11 life-cycle footprint: {footprint}");

    // 2. The paper's lens: opex vs capex.
    let decomposition = CarbonDecomposition::from_footprint(&footprint);
    println!("decomposition: {decomposition}");
    println!(
        "capex dominates? {} (capex/opex = {:.1}x)",
        decomposition.is_capex_dominated(),
        decomposition.capex_to_opex()
    );

    // 3. Build a footprint for your own device with the builder API:
    //    a 5 W always-on edge box with 30 kg of manufacturing carbon,
    //    operated for 4 years on the average US grid.
    let use_model = UsePhase::builder(Power::from_watts(5.0))
        .lifetime(TimeSpan::from_years(4.0))
        .grid(chasing_carbon::data::us_grid_intensity())
        .build();
    let edge_box = Footprint::builder()
        .production(CarbonMass::from_kg(30.0))
        .transport(CarbonMass::from_kg(2.0))
        .use_phase(use_model.lifetime_carbon())
        .end_of_life(CarbonMass::from_kg(0.5))
        .build();
    println!("\ncustom edge box: {edge_box}");

    // 4. What if the same box ran on wind power? (Table II)
    let wind = chasing_carbon::data::energy_sources::EnergySource::Wind.carbon_intensity();
    let green = edge_box.with_use_phase(use_model.on_grid(wind).lifetime_carbon());
    println!("same box on wind: {green}");
    println!(
        "lesson of the paper: greening the energy moved the footprint from {} to {} capex-dominated",
        edge_box.capex_share(),
        green.capex_share()
    );

    // 5. Re-run a whole paper experiment under your own scenario: Fig 10's
    //    break-even analysis on a hydro grid with a 5-year lifetime.
    let hydro = Scenario::builder()
        .name("hydro-5yr")
        .grid_intensity(24.0)
        .lifetime_years(5.0)
        .build();
    let fig10 = chasing_carbon::core::experiments::find("fig10").expect("registry");
    let out = fig10.run(&RunContext::new(hydro));
    println!("\nFig 10 under `hydro-5yr`:");
    for note in &out.notes {
        println!("  note: {note}");
    }
}
