//! A corporate-sustainability workflow: simulate a data-center operator's
//! year, roll it into a GHG Protocol disclosure, and propagate input
//! uncertainty into the headline ratio.
//!
//! Run with `cargo run --example corporate_report`.

use chasing_carbon::analysis::uncertainty::{propagate, Triangular};
use chasing_carbon::dcsim::{Facility, ServerConfig};
use chasing_carbon::ghg::reporting::SustainabilityReport;
use chasing_carbon::prelude::*;

fn main() {
    // Simulate the operator's fleet for five years.
    let mut facility = Facility::builder("example-corp", 2022, ServerConfig::storage())
        .initial_servers(50_000)
        .server_growth(1.2)
        .pue(1.12)
        .construction(CarbonMass::from_kt(200.0))
        .renewable_ramp(vec![0.4, 0.6, 0.8, 0.95, 1.0])
        .build();
    let years = facility.simulate(5);

    // Publish a disclosure for each year, the way Fig 11's sources do.
    for year in &years {
        let report =
            SustainabilityReport::from_inventory("ExampleCorp", year.year, &year.inventory());
        println!("{report}\n");
    }

    // How robust is the final-year capex/opex headline to input uncertainty?
    let last = years.last().expect("simulated years");
    let capex = last.capex_carbon.as_tonnes();
    let opex = last.market_carbon.as_tonnes();
    let inputs = [
        Triangular::around(capex, 0.30), // embodied-carbon factors are coarse
        Triangular::around(opex, 0.15),  // metered energy is better known
    ];
    let summary = propagate(&inputs, 20_000, 2026, |x| x[0] / x[1]);
    println!(
        "capex/opex ratio: median {:.0}x (90% band {:.0}x..{:.0}x) — \
         capex dominance survives +/-30% embodied-carbon uncertainty",
        summary.p50, summary.p05, summary.p95
    );
}
