//! The Fig 10 workflow as a user would run it: simulate mobile AI inference,
//! measure its energy with the simulated power monitor, and ask how long the
//! SoC's manufacturing carbon takes to amortize.
//!
//! Run with `cargo run --example mobile_inference_amortization`.

use chasing_carbon::data::ai_models::CnnModel;
use chasing_carbon::lca::AmortizationAnalysis;
use chasing_carbon::prelude::*;
use chasing_carbon::socsim::{ExecutionModel, Network, PowerMonitor, UnitKind};

fn main() {
    let model = ExecutionModel::pixel3();
    let monitor = PowerMonitor::monsoon();

    // The SoC manufacturing budget: half the Pixel 3's production carbon
    // (the paper's Fig 5-derived assumption).
    let pixel3 = chasing_carbon::data::devices::find("Pixel 3").expect("dataset");
    let soc_budget = pixel3.production() * 0.5;
    let analysis = AmortizationAnalysis::new(soc_budget, chasing_carbon::data::us_grid_intensity());
    println!(
        "SoC manufacturing budget: {soc_budget} on a {} grid",
        chasing_carbon::data::us_grid_intensity()
    );
    println!(
        "break-even operational energy: {}\n",
        analysis.breakeven_energy()
    );

    for cnn in CnnModel::FIG9 {
        let network = Network::build(cnn);
        println!("{network}");
        for unit in UnitKind::ALL {
            let report = model.run(&network, unit).expect("pixel3 units");

            // Measure energy the way the authors did: sample the power trace
            // with the (simulated) Monsoon at 5 kHz over repeated runs.
            let static_power = model.soc().unit(unit).expect("unit").static_power();
            let measured = monitor.measure_energy(&report, static_power, 200);

            let be = analysis
                .breakeven(measured, report.latency)
                .expect("positive energy");
            let lifetime = TimeSpan::from_years(3.0);
            println!(
                "  {unit}: {:.1} ms, measured {:.1} mJ/image -> breakeven {:.2e} images, {:.0} days{}",
                report.latency.as_millis(),
                measured.as_joules() * 1e3,
                be.operations,
                be.days,
                if be.exceeds(lifetime) { "  (beyond 3-year lifetime!)" } else { "" }
            );
        }
        println!();
    }
    println!(
        "The paper's takeaway: the more efficient the algorithm/hardware, the longer the \
         manufacturing carbon takes to amortize — for MobileNet-class models the break-even \
         exceeds the device's lifetime, so manufacturing dominates."
    );
}
