//! Design-space exploration on the Fig 8 Pareto frontier: where do today's
//! phones sit, and what would a "scale-down" design (the paper's Section VI
//! ask) do to the frontier?
//!
//! Run with `cargo run --example device_pareto`.

use chasing_carbon::analysis::pareto::{benefit_shift, frontier, Point};
use chasing_carbon::data::phone_perf;
use chasing_carbon::report::chart;

fn main() {
    // Published devices.
    let points: Vec<Point<String>> = phone_perf::ALL
        .iter()
        .map(|p| {
            Point::new(
                p.throughput_ips,
                p.manufacturing().as_kg(),
                p.device.to_string(),
            )
        })
        .collect();

    let front2017 = frontier(
        &points
            .iter()
            .filter(|p| {
                phone_perf::ALL
                    .iter()
                    .any(|q| q.device == p.tag && q.year() <= 2017)
            })
            .cloned()
            .collect::<Vec<_>>(),
    );
    let front2019 = frontier(&points);

    println!("2019 Pareto frontier (throughput vs manufacturing CO2e):");
    let bars: Vec<(&str, f64)> = front2019
        .iter()
        .map(|p| (p.tag.as_str(), p.benefit))
        .collect();
    print!("{}", chart::bars(&bars, 40));
    println!(
        "\nfrontier shift 2017 -> 2019: {:.1}x more throughput at matched carbon budgets",
        benefit_shift(&front2017, &front2019)
    );

    // The paper: "moving the Pareto frontier down is also important".
    // A hypothetical scale-down design: iPhone-X-class throughput from a
    // leaner SoC and smaller BOM at 38 kg of manufacturing carbon.
    let mut with_scale_down = points.clone();
    with_scale_down.push(Point::new(35.0, 38.0, "scale-down concept".to_string()));
    let new_front = frontier(&with_scale_down);
    println!("\nfrontier after adding a scale-down design:");
    for p in &new_front {
        println!(
            "  {:<22} {:>5.0} img/s  {:>5.1} kg CO2e",
            p.tag, p.benefit, p.cost
        );
    }
    let concept_on_front = new_front.iter().any(|p| p.tag == "scale-down concept");
    println!(
        "\nthe concept {} the frontier — same performance tier, lower embodied carbon",
        if concept_on_front { "joins" } else { "misses" }
    );
}
