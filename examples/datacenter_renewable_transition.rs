//! A data-center operator's view: grow a facility, procure renewables, watch
//! the footprint shift from opex to capex — then claw back more carbon with
//! carbon-aware scheduling.
//!
//! Run with `cargo run --example datacenter_renewable_transition`.

use chasing_carbon::dcsim::{CarbonAwareScheduler, DayProfile, Facility, ServerConfig};
use chasing_carbon::ghg::Scope2Method;
use chasing_carbon::prelude::*;

fn main() {
    // A hyperscale facility: web + AI fleets, US grid, wind PPAs ramping to
    // 100% coverage over six years.
    let mut facility = Facility::builder("example-dc", 2019, ServerConfig::ai_training())
        .initial_servers(8_000)
        .server_growth(1.5) // the paper: AI fleets grew 4x in <2 years
        .pue(1.11)
        .construction(CarbonMass::from_kt(180.0))
        .renewable_ramp(vec![0.10, 0.30, 0.55, 0.80, 0.95, 1.0])
        .build();

    println!("year  servers  energy      opex(market)      capex           capex share");
    for year in facility.simulate(6) {
        let inv = year.inventory();
        println!(
            "{}  {:>7}  {:>10}  {:>16}  {:>14}  {}",
            year.year,
            year.servers,
            format!("{:.0} GWh", year.energy.as_gwh()),
            year.market_carbon.to_string(),
            year.capex_carbon.to_string(),
            inv.capex_share(Scope2Method::MarketBased)
        );
    }

    println!(
        "\nEven with 100% renewable coverage the footprint keeps growing — embodied carbon \
         from the expanding AI fleet (the paper's Takeaway 7)."
    );

    // Carbon-aware scheduling: shift the nightly training jobs into the
    // solar window (Section VI extension).
    let profile = DayProfile::solar_grid(40.0, 300.0, 90.0);
    let uniform = CarbonAwareScheduler::uniform(&profile);
    let aware = CarbonAwareScheduler::carbon_aware(&profile);
    let cut = 1.0 - aware.batch_carbon(&profile) / uniform.batch_carbon(&profile);
    println!(
        "\nCarbon-aware batch scheduling on a solar-shaped grid: {} -> {} per day \
         ({:.0}% cut in batch-attributable carbon)",
        uniform.total_carbon,
        aware.total_carbon,
        cut * 100.0
    );
}
