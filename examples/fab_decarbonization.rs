//! A fab operator's view: what combination of renewable electricity and PFC
//! abatement decarbonizes a wafer, and what a chip's embodied carbon looks
//! like per die.
//!
//! Run with `cargo run --example fab_decarbonization`.

use chasing_carbon::fab::{abatement, DieModel, ProcessNode, WaferFootprint};

fn main() {
    let wafer = WaferFootprint::tsmc_300mm();
    println!("baseline 300 mm wafer: {wafer}");
    for (label, carbon, is_energy) in wafer.components() {
        println!(
            "  {:<28} {:>14}  {}",
            label,
            carbon.to_string(),
            if is_energy {
                "(scales with grid)"
            } else {
                "(process)"
            }
        );
    }

    // Fig 14's sweep plus the PFC-abatement lever the paper points at.
    println!("\nrenewables x  +PFC abatement 90%  total vs baseline");
    for factor in [1.0, 4.0, 16.0, 64.0] {
        let renewables_only = wafer.with_renewable_scaling(factor);
        let both = abatement::decarbonize(&wafer, factor, 0.9);
        println!(
            "  {factor:>4.0}x        {:>18}  {:.3} -> {:.3}",
            both.total().to_string(),
            renewables_only.total() / wafer.total(),
            both.total() / wafer.total()
        );
    }

    // Die-level embodied carbon: the provisioning decision in kg CO2e.
    println!("\nper-die embodied carbon (mobile SoC, 94 mm2):");
    for node in [
        ProcessNode::N14,
        ProcessNode::N10,
        ProcessNode::N7,
        ProcessNode::N5,
    ] {
        let die = DieModel::new(node, 94.0).expect("valid die");
        println!(
            "  {node}: yield {:.0}%, {:.0} good dies/wafer, {} per die",
            die.yield_fraction() * 100.0,
            die.good_dies_per_wafer(),
            die.embodied_carbon()
        );
    }

    // And the same SoC from a fab powered by Taiwanese grid vs wind.
    let taiwan = chasing_carbon::data::grids::Region::Taiwan.carbon_intensity();
    let wind = chasing_carbon::data::energy_sources::EnergySource::Wind.carbon_intensity();
    let base = DieModel::new(ProcessNode::N7, 94.0).expect("valid die");
    let green = base.clone().with_fab_grid(taiwan, wind);
    println!(
        "\nsame die, fab on wind instead of the Taiwanese grid: {} -> {} ({:.2}x)",
        base.embodied_carbon(),
        green.embodied_carbon(),
        base.embodied_carbon() / green.embodied_carbon()
    );
}
