//! # chasing-carbon
//!
//! A reproduction of *Chasing Carbon: The Elusive Environmental Footprint of
//! Computing* (Gupta et al., HPCA 2021) as a production-quality Rust
//! workspace: a carbon-footprint modeling and accounting framework for
//! computer systems, plus simulators for every substrate the paper measured.
//!
//! This facade crate re-exports the workspace crates under stable names:
//!
//! * [`units`] — typed physical quantities (energy, power, carbon, intensity)
//! * [`data`] — curated industry datasets digitized from the paper
//! * [`analysis`] — Pareto frontiers, projections, crossover analysis
//! * [`lca`] — life-cycle assessment with opex/capex decomposition
//! * [`ghg`] — GHG Protocol Scope 1/2/3 corporate accounting
//! * [`fab`] — wafer manufacturing and die-level embodied carbon
//! * [`socsim`] — mobile SoC inference performance/energy simulator
//! * [`dcsim`] — warehouse-scale data-center simulator
//! * [`report`] — tables, series, scenarios and the experiment abstraction
//! * [`core`] — the opex/capex footprint API and all paper experiments
//! * [`engine`] — the resident execution engine: sharded artifact cache,
//!   grid runner and the `repro serve` protocol/daemon
//!
//! ## Quickstart
//!
//! ```
//! use chasing_carbon::prelude::*;
//!
//! // The footprint of an iPhone 11 over its lifetime, from the embedded LCA:
//! let phone = chasing_carbon::data::devices::find("iPhone 11").unwrap();
//! assert!(phone.capex_share().as_percent() > 80.0);
//! ```
#![forbid(unsafe_code)]

pub use cc_analysis as analysis;
pub use cc_core as core;
pub use cc_data as data;
pub use cc_dcsim as dcsim;
pub use cc_engine as engine;
pub use cc_fab as fab;
pub use cc_ghg as ghg;
pub use cc_lca as lca;
pub use cc_report as report;
pub use cc_socsim as socsim;
pub use cc_units as units;

/// Commonly used items across the workspace.
pub mod prelude {
    pub use cc_report::{
        Comparison, Experiment, RunContext, Scenario, ScenarioMatrix, Series, SweepSpec,
    };
    pub use cc_units::prelude::*;
}
